package mlpx

import (
	"errors"
	"fmt"
	"math/rand"

	"counterminer/internal/sim"
)

// This file implements the two error-reduction families the paper
// positions CounterMiner against (§VI-B), as baselines:
//
//   - estimation during sampling (Mathur & Cook [38]): an
//     interval-rotation schedule where every event is fully counted in
//     1/G of the reporting intervals and the gaps are filled by an
//     estimator (zero-order hold or linear interpolation);
//   - smarter scheduling (Lim et al. [34]): an adaptive schedule that
//     keeps a counter on an event whose recent values are still
//     changing and rotates away from events that have stabilised.
//
// Both reduce errors *before or during* measurement; CounterMiner's
// cleaner works *after* it. The benchmark harness compares all three,
// alone and combined.

// Estimator selects how interval-rotation gaps are filled.
type Estimator int

const (
	// HoldEstimator repeats the last observed value (zero-order hold).
	HoldEstimator Estimator = iota
	// InterpEstimator linearly interpolates between the neighbouring
	// observed intervals — the Mathur-Cook estimation baseline.
	InterpEstimator
)

func (e Estimator) String() string {
	if e == HoldEstimator {
		return "hold"
	}
	return "interp"
}

// MeasureRotation samples events with interval-granularity rotation:
// in every reporting interval exactly one group of events owns the
// counters and is counted at OCOE fidelity; all other events see
// nothing and their values for that interval are later estimated. This
// trades the ×G extrapolation noise of slice multiplexing for
// information loss between observation points.
func MeasureRotation(tr *sim.Trace, events []string, pmu sim.PMU, est Estimator, seed int64) (*Result, error) {
	if len(events) == 0 {
		return nil, errors.New("mlpx: no events requested")
	}
	cat := tr.Catalogue()
	for _, ev := range events {
		if cat.Index(ev) < 0 {
			return nil, fmt.Errorf("mlpx: unknown event %q", ev)
		}
	}
	groups := pmu.Groups(len(events))
	res := &Result{
		Series:   make(map[string][]float64, len(events)),
		Groups:   groups,
		Schedule: make(map[string]int, len(events)),
	}
	for i, ev := range events {
		res.Schedule[ev] = i / pmu.Programmable
	}
	rng := rand.New(rand.NewSource(seed))
	if groups <= 1 {
		obs, err := pmu.MeasureOCOE(tr, events, seed)
		if err != nil {
			return nil, err
		}
		res.Series = obs
		return res, nil
	}
	rotation := rng.Intn(groups)

	for _, ev := range events {
		truth, err := tr.Series(ev)
		if err != nil {
			return nil, err
		}
		g := res.Schedule[ev]
		n := len(truth)
		observed := make([]bool, n)
		out := make([]float64, n)
		for t := 0; t < n; t++ {
			if (t+rotation)%groups == g {
				out[t] = truth[t] * (1 + pmu.NoiseRel*rng.NormFloat64())
				if out[t] < 0 {
					out[t] = 0
				}
				observed[t] = true
			}
		}
		fillGaps(out, observed, est)
		res.Series[ev] = out
	}
	return res, nil
}

// fillGaps estimates the unobserved positions in place.
func fillGaps(values []float64, observed []bool, est Estimator) {
	n := len(values)
	prev := -1
	for t := 0; t < n; t++ {
		if observed[t] {
			prev = t
			continue
		}
		// Find the next observed index.
		next := -1
		for u := t + 1; u < n; u++ {
			if observed[u] {
				next = u
				break
			}
		}
		switch {
		case prev < 0 && next < 0:
			values[t] = 0
		case prev < 0:
			values[t] = values[next]
		case next < 0:
			values[t] = values[prev]
		case est == HoldEstimator:
			values[t] = values[prev]
		default: // InterpEstimator
			f := float64(t-prev) / float64(next-prev)
			values[t] = values[prev]*(1-f) + values[next]*f
		}
	}
}

// MeasureAdaptive implements a Lim-style adaptive schedule on top of
// interval rotation: an event keeps the counters for consecutive
// intervals while its three most recent observations are still moving
// (relative spread above threshold) and yields early once they have
// stabilised, letting starved events catch up. Gaps are linearly
// interpolated.
func MeasureAdaptive(tr *sim.Trace, events []string, pmu sim.PMU, seed int64) (*Result, error) {
	if len(events) == 0 {
		return nil, errors.New("mlpx: no events requested")
	}
	cat := tr.Catalogue()
	truth := make(map[string][]float64, len(events))
	n := 0
	for _, ev := range events {
		if cat.Index(ev) < 0 {
			return nil, fmt.Errorf("mlpx: unknown event %q", ev)
		}
		s, err := tr.Series(ev)
		if err != nil {
			return nil, err
		}
		truth[ev] = s
		n = len(s)
	}
	groups := pmu.Groups(len(events))
	res := &Result{
		Series:   make(map[string][]float64, len(events)),
		Groups:   groups,
		Schedule: make(map[string]int, len(events)),
	}
	for i, ev := range events {
		res.Schedule[ev] = i / pmu.Programmable
	}
	rng := rand.New(rand.NewSource(seed))
	if groups <= 1 {
		obs, err := pmu.MeasureOCOE(tr, events, seed)
		if err != nil {
			return nil, err
		}
		res.Series = obs
		return res, nil
	}

	// Per-event state.
	type state struct {
		recent   []float64 // last <=3 observations
		starved  int       // intervals since last observation
		observed []bool
		out      []float64
	}
	states := make(map[string]*state, len(events))
	for _, ev := range events {
		states[ev] = &state{observed: make([]bool, n), out: make([]float64, n)}
	}

	// stable reports whether the last three observations differ by
	// less than 10% of their mean — Lim's "values not significantly
	// different" rule.
	stable := func(s *state) bool {
		if len(s.recent) < 3 {
			return false
		}
		mean := (s.recent[0] + s.recent[1] + s.recent[2]) / 3
		if mean == 0 {
			return true
		}
		for _, v := range s.recent {
			d := (v - mean) / mean
			if d < 0 {
				d = -d
			}
			if d > 0.10 {
				return false
			}
		}
		return true
	}

	// Each interval, pick the `Programmable` events with the highest
	// priority: unstable events and starved events first.
	for t := 0; t < n; t++ {
		type cand struct {
			ev   string
			prio float64
		}
		cands := make([]cand, 0, len(events))
		for _, ev := range events {
			s := states[ev]
			p := float64(s.starved)
			if !stable(s) {
				p += float64(2 * groups) // changing events keep priority
			}
			// Small jitter breaks ties fairly.
			p += rng.Float64() * 0.5
			cands = append(cands, cand{ev: ev, prio: p})
		}
		// Partial selection of the top `Programmable` candidates.
		k := pmu.Programmable
		if k > len(cands) {
			k = len(cands)
		}
		for i := 0; i < k; i++ {
			best := i
			for j := i + 1; j < len(cands); j++ {
				if cands[j].prio > cands[best].prio {
					best = j
				}
			}
			cands[i], cands[best] = cands[best], cands[i]
		}
		selected := cands[:k]
		chosen := make(map[string]bool, k)
		for _, c := range selected {
			chosen[c.ev] = true
		}
		for _, ev := range events {
			s := states[ev]
			if chosen[ev] {
				v := truth[ev][t] * (1 + pmu.NoiseRel*rng.NormFloat64())
				if v < 0 {
					v = 0
				}
				s.out[t] = v
				s.observed[t] = true
				s.recent = append(s.recent, v)
				if len(s.recent) > 3 {
					s.recent = s.recent[1:]
				}
				s.starved = 0
			} else {
				s.starved++
			}
		}
	}
	for _, ev := range events {
		s := states[ev]
		fillGaps(s.out, s.observed, InterpEstimator)
		res.Series[ev] = s.out
	}
	return res, nil
}
