package timeseries

import (
	"fmt"
	"sort"
)

// Set is a collection of event series belonging to one program run,
// keyed by event name. The zero value is not usable; construct with
// NewSet.
type Set struct {
	series map[string]*Series
}

// NewSet returns an empty Set.
func NewSet() *Set {
	return &Set{series: make(map[string]*Series)}
}

// Put stores (or replaces) the series for its event name.
func (set *Set) Put(s *Series) {
	set.series[s.Event] = s
}

// Get returns the series for event and whether it exists.
func (set *Set) Get(event string) (*Series, bool) {
	s, ok := set.series[event]
	return s, ok
}

// Lookup returns the series for event, or an error naming the missing
// event. Library code should use Lookup (or Get) rather than MustGet so
// an absent event surfaces as a reportable error instead of a panic.
func (set *Set) Lookup(event string) (*Series, error) {
	s, ok := set.series[event]
	if !ok {
		return nil, fmt.Errorf("timeseries: no series for event %q", event)
	}
	return s, nil
}

// MustGet returns the series for event, panicking if it is absent. It
// is intended for tests only, where the event set is fixed by
// construction; library code must use Lookup or Get.
func (set *Set) MustGet(event string) *Series {
	s, ok := set.series[event]
	if !ok {
		panic(fmt.Sprintf("timeseries: no series for event %q", event))
	}
	return s
}

// Len reports the number of series in the set.
func (set *Set) Len() int { return len(set.series) }

// Events returns the event names in lexical order.
func (set *Set) Events() []string {
	out := make([]string, 0, len(set.series))
	for ev := range set.series {
		out = append(out, ev)
	}
	sort.Strings(out)
	return out
}

// Clone returns a deep copy of the set.
func (set *Set) Clone() *Set {
	out := NewSet()
	for _, s := range set.series {
		out.Put(s.Clone())
	}
	return out
}

// MinLen returns the length of the shortest series in the set, or 0 for
// an empty set. Ragged sets are the norm (OCOE runs have different
// lengths), so consumers that need a rectangular matrix truncate to
// MinLen.
func (set *Set) MinLen() int {
	min := -1
	for _, s := range set.series {
		if min < 0 || s.Len() < min {
			min = s.Len()
		}
	}
	if min < 0 {
		return 0
	}
	return min
}

// Matrix returns a rectangular sample matrix X with one row per
// measurement interval and one column per event (in the order given),
// truncated to the shortest *requested* series — series in the set but
// not in events (e.g. quarantined columns) do not shrink the matrix.
// Events missing from the set yield an error.
func (set *Set) Matrix(events []string) ([][]float64, error) {
	cols := make([]*Series, len(events))
	n := -1
	for j, ev := range events {
		s, ok := set.Get(ev)
		if !ok {
			return nil, fmt.Errorf("timeseries: matrix: missing event %q", ev)
		}
		cols[j] = s
		if n < 0 || s.Len() < n {
			n = s.Len()
		}
	}
	if n < 0 {
		n = 0
	}
	X := make([][]float64, n)
	for i := range X {
		X[i] = make([]float64, len(events))
	}
	for j, s := range cols {
		for i := 0; i < n; i++ {
			X[i][j] = s.At(i)
		}
	}
	return X, nil
}
