package sgbrt

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	X, y := friedmanData(rng, 300, 2)
	e, err := Fit(X, y, Params{Trees: 40, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumTrees() != e.NumTrees() || loaded.NumFeatures() != e.NumFeatures() {
		t.Fatalf("loaded shape: %d trees, %d features", loaded.NumTrees(), loaded.NumFeatures())
	}
	for i := 0; i < 50; i++ {
		p1, err1 := e.Predict(X[i])
		p2, err2 := loaded.Predict(X[i])
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if p1 != p2 {
			t.Fatalf("prediction differs after round trip: %v vs %v", p1, p2)
		}
	}
	// Importances survive too.
	i1, i2 := e.Importances(), loaded.Importances()
	for j := range i1 {
		if math.Abs(i1[j]-i2[j]) > 1e-12 {
			t.Fatalf("importances differ at %d", j)
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not a gob")); err == nil {
		t.Error("garbage should error")
	}
}

func TestLoadRejectsBadIndices(t *testing.T) {
	img := wireEnsemble{
		Version:   wireVersion,
		NFeatures: 2,
		Trees: []wireTree{{
			NFeatures: 2,
			Nodes:     []wireNode{{Feature: 0, Left: 5, Right: 6}},
		}},
	}
	var buf bytes.Buffer
	if err := encodeWire(&buf, &img); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(&buf); err == nil {
		t.Error("out-of-range children should error")
	}

	img = wireEnsemble{Version: 99, NFeatures: 1}
	buf.Reset()
	if err := encodeWire(&buf, &img); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(&buf); err == nil {
		t.Error("bad version should error")
	}
}

func TestStagedPredictMatchesFinal(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	X, y := friedmanData(rng, 200, 1)
	e, err := Fit(X, y, Params{Trees: 25, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	staged, err := e.StagedPredict(X[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(staged) != 25 {
		t.Fatalf("staged length = %d", len(staged))
	}
	final, _ := e.Predict(X[0])
	if math.Abs(staged[len(staged)-1]-final) > 1e-9 {
		t.Errorf("last stage %v != final %v", staged[len(staged)-1], final)
	}
	if _, err := e.StagedPredict([]float64{1}); err == nil {
		t.Error("dimension mismatch should error")
	}
}

func TestStagedMAPEDecreasesOnTrain(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	X, y := friedmanData(rng, 400, 1)
	e, err := Fit(X, y, Params{Trees: 60, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	curve, err := e.StagedMAPE(X, y)
	if err != nil {
		t.Fatal(err)
	}
	if curve[len(curve)-1] >= curve[0] {
		t.Errorf("training error did not decrease: %v -> %v", curve[0], curve[len(curve)-1])
	}
	if _, err := e.StagedMAPE(nil, nil); err == nil {
		t.Error("empty should error")
	}
	if _, err := e.StagedMAPE(X, y[:1]); err == nil {
		t.Error("mismatch should error")
	}
	if _, err := e.StagedMAPE([][]float64{X[0]}, []float64{0}); err == nil {
		t.Error("all-zero targets should error")
	}
}

func TestPartialDependenceMonotoneFeature(t *testing.T) {
	// y = 5·x0: partial dependence on feature 0 must increase.
	rng := rand.New(rand.NewSource(34))
	n := 500
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		X[i] = []float64{rng.Float64(), rng.Float64()}
		y[i] = 5*X[i][0] + 0.05*rng.NormFloat64()
	}
	e, err := Fit(X, y, Params{Trees: 80, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	grid, resp, err := e.PartialDependence(X, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(grid) != 8 || len(resp) != 8 {
		t.Fatalf("grid/resp lengths: %d/%d", len(grid), len(resp))
	}
	if resp[7] <= resp[0] {
		t.Errorf("PD not increasing: %v ... %v", resp[0], resp[7])
	}
	// Noise feature: flat response.
	_, respNoise, err := e.PartialDependence(X, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	spreadSignal := resp[7] - resp[0]
	spreadNoise := math.Abs(respNoise[7] - respNoise[0])
	if spreadNoise > spreadSignal/4 {
		t.Errorf("noise PD spread %v vs signal %v", spreadNoise, spreadSignal)
	}
	// Validation.
	if _, _, err := e.PartialDependence(nil, 0, 8); err == nil {
		t.Error("empty should error")
	}
	if _, _, err := e.PartialDependence(X, 9, 8); err == nil {
		t.Error("feature out of range should error")
	}
}
