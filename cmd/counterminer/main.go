// Command counterminer runs the full CounterMiner pipeline — collect
// (MLPX) → clean → importance ranking (EIR/MAPM) → interaction ranking
// — on one benchmark of the simulated cluster and prints the mined
// results.
//
// Usage:
//
//	counterminer -bench wordcount
//	counterminer -bench sort -events "L2_RQSTS.*,BR_*,ISF,ICACHE.MISSES"
//	counterminer -bench DataCaching -colocate GraphAnalytics
//	counterminer -csv run.csv
//	counterminer -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	counterminer "counterminer"
)

func main() {
	var (
		bench    = flag.String("bench", "", "benchmark to analyse (see -list)")
		colocate = flag.String("colocate", "", "second benchmark to co-locate with -bench")
		list     = flag.Bool("list", false, "list benchmarks and exit")
		runs     = flag.Int("runs", 3, "benchmark executions to collect")
		trees    = flag.Int("trees", 80, "SGBRT ensemble size")
		events   = flag.String("events", "", "comma-separated event patterns (globs or abbreviations; empty = all 229)")
		csvPath  = flag.String("csv", "", "analyse an external CSV data set (interval,<events...>,ipc) instead of a benchmark")
		topK     = flag.Int("top", 10, "events/interactions to print")
		skipEIR  = flag.Bool("fast", false, "skip EIR (single model fit)")
		dbPath   = flag.String("db", "", "persist collected runs to this store path")
		workers  = flag.Int("workers", 0, "analysis worker count (0 = GOMAXPROCS)")
	)
	flag.Parse()

	opts := counterminer.Options{
		Runs:      *runs,
		Trees:     *trees,
		TopK:      *topK,
		SkipEIR:   *skipEIR,
		StorePath: *dbPath,
		Workers:   *workers,
	}
	p, err := counterminer.NewPipeline(opts)
	if err != nil {
		fatal(err)
	}
	if *list {
		for _, b := range p.Benchmarks() {
			fmt.Println(b)
		}
		return
	}
	start := time.Now()
	var a *counterminer.Analysis
	switch {
	case *csvPath != "":
		f, err := os.Open(*csvPath)
		if err != nil {
			fatal(err)
		}
		data, err := counterminer.LoadCSV(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		a, err = counterminer.AnalyzeData(data, opts)
		if err != nil {
			fatal(err)
		}
	case *bench != "":
		if *events != "" {
			sel, err := p.Catalogue().Select(strings.Split(*events, ","))
			if err != nil {
				fatal(err)
			}
			opts.Events = sel
			p, err = counterminer.NewPipeline(opts)
			if err != nil {
				fatal(err)
			}
		}
		if *colocate != "" {
			a, err = p.AnalyzeColocated(*bench, *colocate)
		} else {
			a, err = p.Analyze(*bench)
		}
		if err != nil {
			fatal(err)
		}
	default:
		fmt.Fprintln(os.Stderr, "counterminer: -bench or -csv required (see -list)")
		os.Exit(2)
	}

	fmt.Printf("benchmark: %s  (analysed in %v)\n", a.Benchmark, time.Since(start).Round(time.Millisecond))
	fmt.Printf("events measured: %d   MAPM events: %d   model error: %.1f%%\n",
		a.Events, a.MAPMEvents, a.ModelError)
	fmt.Printf("cleaner: %d outliers replaced, %d missing values filled\n",
		a.OutliersReplaced, a.MissingFilled)
	fmt.Printf("one-three SMI count: %d\n\n", a.SMICount())

	fmt.Printf("top %d important events:\n", *topK)
	for i, e := range a.TopEvents(*topK) {
		fmt.Printf("  %2d. %-4s %6.2f%%  %s\n", i+1, e.Abbrev, e.Importance, e.Event)
	}
	fmt.Printf("\ntop %d event-pair interactions:\n", *topK)
	for i, pr := range a.TopInteractions(*topK) {
		fmt.Printf("  %2d. %-9s %6.2f%%\n", i+1, pr.Key(), pr.Importance)
	}
	if len(a.EIRNumEvents) > 1 {
		fmt.Printf("\nEIR curve (events: model error):\n ")
		for i := range a.EIRNumEvents {
			fmt.Printf(" %d:%.1f%%", a.EIRNumEvents[i], a.EIRErrors[i])
		}
		fmt.Println()
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "counterminer:", err)
	os.Exit(1)
}
