package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"counterminer/internal/parallel"
)

// Admission-control sentinels. The HTTP layer maps them to typed JSON
// rejections: ErrQueueFull → 429 (back off and retry), ErrDraining →
// 503 (the server is shutting down; retry against another instance).
var (
	// ErrQueueFull reports a job rejected because the bounded queue is
	// at capacity. Rejecting at admission is what keeps overload
	// graceful: the server sheds work instead of buffering unboundedly.
	ErrQueueFull = errors.New("serve: queue full")
	// ErrDraining reports a job rejected because the queue is shutting
	// down and no longer admits work.
	ErrDraining = errors.New("serve: draining, not accepting new jobs")
)

// Queue is the admission-controlled job queue in front of the analysis
// pipeline: a bounded buffer feeding a fixed worker pool (run on
// internal/parallel, the same pool primitive as the analysis engine
// itself). Every admitted job gets its own deadline derived from the
// server's per-request budget, so one slow analysis can never hold a
// worker forever.
//
// Shutdown is graceful and split by state: Drain lets jobs that are
// already executing finish, while jobs still waiting in the buffer get
// their contexts canceled — they then travel the pipeline's ordinary
// *CancelError path and their waiters see a typed cancellation, not a
// hang.
type Queue struct {
	jobs   chan *queuedJob
	budget time.Duration
	done   chan struct{}

	mu       sync.Mutex
	draining bool
	pending  map[*queuedJob]struct{}

	active   atomic.Int64
	executed atomic.Int64
}

// queuedJob is one admitted unit of work with its budget context.
type queuedJob struct {
	ctx    context.Context
	cancel context.CancelFunc
	run    func(context.Context)
}

// NewQueue starts a queue with the given worker pool size, buffer
// depth (jobs waiting beyond the ones executing; 0 means a job is only
// admitted when a worker is idle), and per-job budget (<= 0 means no
// deadline).
func NewQueue(workers, depth int, budget time.Duration) *Queue {
	if workers <= 0 {
		workers = 1
	}
	if depth < 0 {
		depth = 0
	}
	q := &Queue{
		jobs:    make(chan *queuedJob, depth),
		budget:  budget,
		done:    make(chan struct{}),
		pending: make(map[*queuedJob]struct{}),
	}
	go func() {
		defer close(q.done)
		// One "item" per worker, each running the pull loop until the
		// jobs channel closes: the analysis engine's pool primitive
		// doubles as the server's resident worker pool.
		parallel.ForEachWorker(workers, workers, func(_, _ int) error {
			q.loop()
			return nil
		})
	}()
	return q
}

// loop is one worker: pull, claim (so Drain no longer cancels the
// job), execute under the job's budget context, release the timer.
func (q *Queue) loop() {
	for j := range q.jobs {
		q.mu.Lock()
		delete(q.pending, j)
		q.mu.Unlock()
		q.active.Add(1)
		j.run(j.ctx)
		j.cancel()
		q.active.Add(-1)
		q.executed.Add(1)
	}
}

// Submit admits run into the queue, or rejects it with ErrQueueFull /
// ErrDraining without blocking. An admitted job runs exactly once on
// some worker, under a context carrying the per-job budget deadline —
// canceled early only if the queue drains before the job starts.
func (q *Queue) Submit(run func(context.Context)) error {
	var deadline time.Time
	if q.budget > 0 {
		deadline = time.Now().Add(q.budget)
	}
	return q.SubmitDeadline(deadline, run)
}

// SubmitDeadline is Submit under an explicit deadline (zero means
// none) instead of one carved per job from the server budget. The
// batch scheduler uses it to run every job of a batch under one
// batch-level deadline, so a sweep's total hold on the workers is
// bounded exactly like a single request's.
func (q *Queue) SubmitDeadline(deadline time.Time, run func(context.Context)) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.draining {
		return ErrDraining
	}
	var (
		ctx    context.Context
		cancel context.CancelFunc
	)
	if !deadline.IsZero() {
		ctx, cancel = context.WithDeadline(context.Background(), deadline)
	} else {
		ctx, cancel = context.WithCancel(context.Background())
	}
	j := &queuedJob{ctx: ctx, cancel: cancel, run: run}
	select {
	case q.jobs <- j:
		q.pending[j] = struct{}{}
		return nil
	default:
		cancel()
		return ErrQueueFull
	}
}

// Drain shuts the queue down gracefully: new submissions are rejected
// with ErrDraining, jobs already executing run to completion, and jobs
// still waiting in the buffer have their contexts canceled (they still
// execute, but observe cancellation immediately and return through the
// pipeline's *CancelError path). Drain blocks until every worker has
// exited; it is idempotent.
func (q *Queue) Drain() {
	q.mu.Lock()
	if q.draining {
		q.mu.Unlock()
		<-q.done
		return
	}
	q.draining = true
	for j := range q.pending {
		j.cancel()
	}
	q.mu.Unlock()
	close(q.jobs)
	<-q.done
}

// Depth reports how many admitted jobs are waiting for a worker.
func (q *Queue) Depth() int { return len(q.jobs) }

// Capacity reports the buffer depth the queue admits beyond the
// executing jobs.
func (q *Queue) Capacity() int { return cap(q.jobs) }

// Active reports how many jobs are executing right now.
func (q *Queue) Active() int { return int(q.active.Load()) }

// Executed reports how many jobs have finished executing (successfully
// or not) since the queue started.
func (q *Queue) Executed() int { return int(q.executed.Load()) }
