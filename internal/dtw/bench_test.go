package dtw

import (
	"math/rand"
	"testing"
)

func benchSeries(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	s := make([]float64, n)
	for i := range s {
		s[i] = rng.NormFloat64()
	}
	return s
}

func BenchmarkDistance(b *testing.B) {
	s1 := benchSeries(420, 1)
	s2 := benchSeries(440, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Distance(s1, s2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDistanceBanded(b *testing.B) {
	s1 := benchSeries(420, 1)
	s2 := benchSeries(440, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DistanceOpt(s1, s2, Options{Window: 40}); err != nil {
			b.Fatal(err)
		}
	}
}
