package parallel

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// settleGoroutines polls runtime.NumGoroutine until it drops back to
// the baseline (plus a small slack for runtime helpers) or the
// deadline expires, returning the last observed count.
func settleGoroutines(t *testing.T, baseline int) int {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	n := runtime.NumGoroutine()
	for n > baseline+2 && time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(time.Millisecond)
		n = runtime.NumGoroutine()
	}
	return n
}

func TestForEachCtxPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		called := false
		err := ForEachCtx(ctx, 10, workers, func(int) error { called = true; return nil })
		if !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if called {
			t.Errorf("workers=%d: fn ran despite pre-canceled ctx", workers)
		}
	}
}

// TestForEachCtxCancelMidFlight cancels at several points of the item
// stream and asserts the three-part contract: the returned error is
// exactly ctx.Err(), no new items are claimed after the cancellation
// settles, and every pool goroutine exits (no leaks).
func TestForEachCtxCancelMidFlight(t *testing.T) {
	baseline := settleGoroutines(t, runtime.NumGoroutine())
	for _, cancelAt := range []int{0, 1, 7, 31} {
		for _, workers := range []int{1, 2, 8} {
			ctx, cancel := context.WithCancel(context.Background())
			var ran atomic.Int64
			err := ForEachCtx(ctx, 10_000, workers, func(i int) error {
				if int(ran.Add(1)) == cancelAt+1 {
					cancel()
				}
				return nil
			})
			cancel()
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("cancelAt=%d workers=%d: err = %v, want context.Canceled",
					cancelAt, workers, err)
			}
			// Cancellation is observed between items: each in-flight
			// worker may finish the item it already claimed, but no
			// more than `workers` extra items can run.
			if n := ran.Load(); n > int64(cancelAt+1+workers) {
				t.Errorf("cancelAt=%d workers=%d: %d items ran after cancel",
					cancelAt, workers, n)
			}
		}
	}
	if n := settleGoroutines(t, baseline); n > baseline+2 {
		t.Errorf("goroutines leaked: baseline %d, now %d", baseline, n)
	}
}

// TestForEachCtxCompletedWork pins the completed-then-canceled rule on
// the deterministic serial path: when the context is canceled while
// the final item runs, all n items have completed and the call reports
// the finished work (nil), not the late cancellation.
func TestForEachCtxCompletedWork(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	n := 8
	ran := 0
	err := ForEachCtx(ctx, n, 1, func(i int) error {
		ran++
		if i == n-1 {
			cancel() // fires after the last pre-item check
		}
		return nil
	})
	if err != nil {
		t.Fatalf("err = %v, want nil: all items completed before cancellation was observable", err)
	}
	if ran != n {
		t.Fatalf("ran %d of %d items", ran, n)
	}
}

// TestForEachCtxItemErrorBeatsLateCancel: when every item completed or
// failed normally and the error verdict is already determined, a
// cancellation that never stopped the pool must not mask the item
// error. (Serial path for determinism.)
func TestForEachCtxItemErrorWithoutCancel(t *testing.T) {
	ctx := context.Background()
	want := errors.New("item-3")
	err := ForEachCtx(ctx, 10, 1, func(i int) error {
		if i == 3 {
			return want
		}
		return nil
	})
	if err != want {
		t.Fatalf("err = %v, want %v", err, want)
	}
}

// TestForEachCtxCancelReturnsCtxErrNotItemErr: once the pool stops
// early on cancellation, ctx.Err() is the deterministic verdict even
// if some already-claimed item also failed.
func TestForEachCtxCancelReturnsCtxErr(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	err := ForEachCtx(ctx, 1000, 4, func(i int) error {
		cancel()
		return errors.New("item error racing the cancellation")
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestForEachCtxDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	err := ForEachCtx(ctx, 1_000_000, 4, func(i int) error {
		time.Sleep(100 * time.Microsecond)
		return nil
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

func TestMapCtxCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out, err := MapCtx(ctx, 10, 4, func(i int) (int, error) { return i, nil })
	if out != nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("MapCtx = (%v, %v), want nil slice and context.Canceled", out, err)
	}
}

func TestMapCtxCompletes(t *testing.T) {
	out, err := MapCtx(context.Background(), 12, 3, func(i int) (int, error) { return 2 * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != 2*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

// TestForEachWorkerCtxLeakSoak runs many cancel-mid-flight pools
// back-to-back and asserts the goroutine count settles at baseline —
// the regression test for pool-goroutine leaks under cancellation.
func TestForEachWorkerCtxLeakSoak(t *testing.T) {
	baseline := settleGoroutines(t, runtime.NumGoroutine())
	for round := 0; round < 50; round++ {
		ctx, cancel := context.WithCancel(context.Background())
		var ran atomic.Int64
		_ = ForEachWorkerCtx(ctx, 5000, 8, func(w, i int) error {
			if ran.Add(1) == 3 {
				cancel()
			}
			return nil
		})
		cancel()
	}
	if n := settleGoroutines(t, baseline); n > baseline+2 {
		t.Errorf("goroutines leaked across canceled pools: baseline %d, now %d", baseline, n)
	}
}
