package spark

import "fmt"

// CostModel reproduces the Fig. 15 profiling-cost accounting that
// compares two ways of identifying important Spark configuration
// parameters:
//
//   - Method B ranks parameters directly: one training example —
//     (configuration, execution time) — requires one complete benchmark
//     run, because execution time is only known after the run finishes.
//   - Method A ranks events first: one run yields SamplesPerRun
//     training examples — (event values, IPC) pairs, one per sampling
//     interval — so the event model needs far fewer runs; finding the
//     parameter↔event couplings afterwards costs a bounded parameter
//     sweep.
type CostModel struct {
	// ExamplesForAccuracy is the number of training examples needed to
	// reach the target model accuracy (the paper's pagerank example
	// uses 6000 examples for ~90% accuracy).
	ExamplesForAccuracy int
	// SamplesPerRun is how many (events, IPC) samples one run yields
	// (the paper's pagerank runs yield ~100).
	SamplesPerRun int
	// ParamsSwept is how many configuration parameters the coupling
	// search sweeps.
	ParamsSwept int
	// ValuesPerParam is the sweep grid size per parameter.
	ValuesPerParam int
	// RepsPerValue is the repetition count per grid point.
	RepsPerValue int
}

// PaperCostModel returns the §V-D pagerank accounting: 6000 examples
// for 90% accuracy, 100 samples per run, and a coupling sweep totalling
// 1520 runs, giving 6000 vs. 1580 runs (method A ≈ 1/4 the cost).
func PaperCostModel() CostModel {
	return CostModel{
		ExamplesForAccuracy: 6000,
		SamplesPerRun:       100,
		ParamsSwept:         16,
		ValuesPerParam:      19,
		RepsPerValue:        5,
	}
}

// MethodBRuns is the run count for directly ranking parameter
// importance: one run per training example.
func (c CostModel) MethodBRuns() int { return c.ExamplesForAccuracy }

// MethodARuns is the run count for the event-importance route: model
// building plus the coupling sweep.
func (c CostModel) MethodARuns() int {
	return c.ModelBuildingRuns() + c.CouplingSweepRuns()
}

// ModelBuildingRuns is the number of runs needed to collect the event
// model's training examples.
func (c CostModel) ModelBuildingRuns() int {
	if c.SamplesPerRun <= 0 {
		return c.ExamplesForAccuracy
	}
	n := c.ExamplesForAccuracy / c.SamplesPerRun
	if c.ExamplesForAccuracy%c.SamplesPerRun != 0 {
		n++
	}
	return n
}

// CouplingSweepRuns is the number of runs the parameter↔event coupling
// search costs.
func (c CostModel) CouplingSweepRuns() int {
	return c.ParamsSwept * c.ValuesPerParam * c.RepsPerValue
}

// Speedup is MethodBRuns / MethodARuns.
func (c CostModel) Speedup() float64 {
	a := c.MethodARuns()
	if a == 0 {
		return 0
	}
	return float64(c.MethodBRuns()) / float64(a)
}

// String summarises the accounting.
func (c CostModel) String() string {
	return fmt.Sprintf("method A: %d runs (%d model + %d sweep), method B: %d runs, speedup %.2fx",
		c.MethodARuns(), c.ModelBuildingRuns(), c.CouplingSweepRuns(), c.MethodBRuns(), c.Speedup())
}
