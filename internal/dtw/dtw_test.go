package dtw

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestIdenticalSeriesZeroDistance(t *testing.T) {
	s := []float64{1, 2, 3, 4, 5}
	d, err := Distance(s, s)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Errorf("DTW(s, s) = %v, want 0", d)
	}
}

func TestEmptySeriesError(t *testing.T) {
	if _, err := Distance(nil, []float64{1}); err == nil {
		t.Error("empty s1 should error")
	}
	if _, err := Distance([]float64{1}, nil); err == nil {
		t.Error("empty s2 should error")
	}
}

func TestKnownSmallCase(t *testing.T) {
	// Hand-computed: s1={0,1,2}, s2={0,2}.
	// Optimal alignment: (0,0)=0, (1,1)=1, (2,1)=0 -> 1.
	d, err := Distance([]float64{0, 1, 2}, []float64{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(d, 1, 1e-12) {
		t.Errorf("DTW = %v, want 1", d)
	}
}

func TestTimeShiftToleratedBetterThanEuclidean(t *testing.T) {
	// A pulse shifted by 2 positions: Euclidean distance would be large,
	// DTW should be small.
	s1 := []float64{0, 0, 10, 0, 0, 0, 0}
	s2 := []float64{0, 0, 0, 0, 10, 0, 0}
	d, err := Distance(s1, s2)
	if err != nil {
		t.Fatal(err)
	}
	euclid := 0.0
	for i := range s1 {
		euclid += math.Abs(s1[i] - s2[i])
	}
	if d >= euclid {
		t.Errorf("DTW = %v not better than pointwise %v", d, euclid)
	}
	if d != 0 {
		t.Errorf("DTW of shifted pulse = %v, want 0", d)
	}
}

func TestDifferentLengths(t *testing.T) {
	s1 := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	s2 := []float64{1, 3, 5, 7} // same ramp, half the samples
	d, err := Distance(s1, s2)
	if err != nil {
		t.Fatal(err)
	}
	// Each s2 point can absorb its neighbours cheaply; distance stays
	// well below the naive truncation distance.
	if d > 4 {
		t.Errorf("DTW of subsampled ramp = %v, want small", d)
	}
}

func TestSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		n1, n2 := 5+rng.Intn(50), 5+rng.Intn(50)
		s1 := make([]float64, n1)
		s2 := make([]float64, n2)
		for i := range s1 {
			s1[i] = rng.Float64() * 100
		}
		for i := range s2 {
			s2[i] = rng.Float64() * 100
		}
		d12, err1 := Distance(s1, s2)
		d21, err2 := Distance(s2, s1)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if !approx(d12, d21, 1e-9) {
			t.Fatalf("DTW not symmetric: %v vs %v", d12, d21)
		}
	}
}

func TestWindowedMatchesFullWhenWide(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	s1 := make([]float64, 40)
	s2 := make([]float64, 37)
	for i := range s1 {
		s1[i] = rng.NormFloat64()
	}
	for i := range s2 {
		s2[i] = rng.NormFloat64()
	}
	full, err := Distance(s1, s2)
	if err != nil {
		t.Fatal(err)
	}
	banded, err := DistanceOpt(s1, s2, Options{Window: 40})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(full, banded, 1e-9) {
		t.Errorf("wide band %v != full %v", banded, full)
	}
}

func TestWindowedIsUpperBound(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		s1 := make([]float64, 30+rng.Intn(20))
		s2 := make([]float64, 30+rng.Intn(20))
		for i := range s1 {
			s1[i] = rng.Float64()
		}
		for i := range s2 {
			s2[i] = rng.Float64()
		}
		full, err := Distance(s1, s2)
		if err != nil {
			t.Fatal(err)
		}
		banded, err := DistanceOpt(s1, s2, Options{Window: 5})
		if err != nil {
			t.Fatal(err)
		}
		if banded < full-1e-9 {
			t.Fatalf("banded %v below full %v", banded, full)
		}
	}
}

func TestPathEndpointsAndMonotonicity(t *testing.T) {
	s1 := []float64{0, 1, 2, 3}
	s2 := []float64{0, 3}
	path, d, err := Path(s1, s2)
	if err != nil {
		t.Fatal(err)
	}
	if path[0] != [2]int{0, 0} {
		t.Errorf("path start = %v", path[0])
	}
	last := path[len(path)-1]
	if last != [2]int{3, 1} {
		t.Errorf("path end = %v", last)
	}
	for k := 1; k < len(path); k++ {
		di := path[k][0] - path[k-1][0]
		dj := path[k][1] - path[k-1][1]
		if di < 0 || dj < 0 || (di == 0 && dj == 0) || di > 1 || dj > 1 {
			t.Fatalf("non-monotone path step %v -> %v", path[k-1], path[k])
		}
	}
	// Path distance must equal Distance.
	d2, err := Distance(s1, s2)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(d, d2, 1e-9) {
		t.Errorf("Path distance %v != Distance %v", d, d2)
	}
}

func TestMLPXErrorPerfectMeasurement(t *testing.T) {
	ocoe := []float64{1, 2, 3, 4}
	// dist_ref == dist_mea => error 0.
	e, err := MLPXError(ocoe, []float64{1, 2, 3, 5}, []float64{1, 2, 3, 5})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(e, 0, 1e-9) {
		t.Errorf("error = %v, want 0", e)
	}
}

func TestMLPXErrorGrowsWithDistortion(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	ocoe1 := make([]float64, 100)
	ocoe2 := make([]float64, 100)
	for i := range ocoe1 {
		base := 10 + 5*math.Sin(float64(i)/10)
		ocoe1[i] = base + rng.NormFloat64()*0.1
		ocoe2[i] = base + rng.NormFloat64()*0.1
	}
	mild := make([]float64, 100)
	severe := make([]float64, 100)
	copy(mild, ocoe1)
	copy(severe, ocoe1)
	for i := 0; i < 100; i += 10 {
		mild[i] += 2
		severe[i] += 20
	}
	eMild, err := MLPXError(ocoe1, ocoe2, mild)
	if err != nil {
		t.Fatal(err)
	}
	eSevere, err := MLPXError(ocoe1, ocoe2, severe)
	if err != nil {
		t.Fatal(err)
	}
	if eSevere <= eMild {
		t.Errorf("severe distortion error %v <= mild %v", eSevere, eMild)
	}
}

func TestMLPXErrorIdenticalEverything(t *testing.T) {
	s := []float64{1, 2, 3}
	e, err := MLPXError(s, s, s)
	if err != nil {
		t.Fatal(err)
	}
	if e != 0 {
		t.Errorf("all-identical error = %v, want 0", e)
	}
}

// Property: DTW distance is never negative and is zero iff an exact
// warp exists (weaker check: identical series give zero).
func TestNonNegativityProperty(t *testing.T) {
	f := func(a, b []float64) bool {
		// Counter values are physical quantities; bound magnitudes so
		// the accumulated cost cannot overflow float64.
		clamp := func(xs []float64) []float64 {
			out := make([]float64, 0, len(xs))
			for _, v := range xs {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					continue
				}
				out = append(out, math.Mod(v, 1e9))
			}
			return out
		}
		a, b = clamp(a), clamp(b)
		if len(a) == 0 || len(b) == 0 {
			return true
		}
		d, err := Distance(a, b)
		return err == nil && d >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestWindowTooNarrowOnVeryUnequalLengths(t *testing.T) {
	// Band width 1 with a 10:1 length ratio leaves reachable cells, but
	// the path must still be found or a clear error returned.
	s1 := make([]float64, 100)
	s2 := []float64{1, 2, 3}
	_, err := DistanceOpt(s1, s2, Options{Window: 1})
	// Either outcome is acceptable as long as it does not panic; but it
	// must be deterministic.
	_, err2 := DistanceOpt(s1, s2, Options{Window: 1})
	if (err == nil) != (err2 == nil) {
		t.Error("windowed DTW nondeterministic")
	}
}
