// Colocation reproduces the paper's §V-E study: mine the event
// importance of workloads sharing a cluster. Running DataCaching next
// to itself barely disturbs the ranking; running it next to
// GraphAnalytics churns the ranking and surfaces L2-cache contention
// events that neither workload shows alone.
//
//	go run ./examples/colocation
package main

import (
	"fmt"
	"log"
	"strings"

	counterminer "counterminer"
)

func main() {
	pipe, err := counterminer.NewPipeline(counterminer.Options{
		Runs:    2,
		Trees:   60,
		SkipEIR: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	solo, err := pipe.Analyze("DataCaching")
	if err != nil {
		log.Fatal(err)
	}
	report("DataCaching alone", solo)

	homo, err := pipe.AnalyzeColocated("DataCaching", "DataCaching")
	if err != nil {
		log.Fatal(err)
	}
	report("DataCaching + DataCaching", homo)

	hetero, err := pipe.AnalyzeColocated("DataCaching", "GraphAnalytics")
	if err != nil {
		log.Fatal(err)
	}
	report("DataCaching + GraphAnalytics", hetero)

	l2 := 0
	for _, e := range hetero.TopEvents(10) {
		if strings.HasPrefix(e.Abbrev, "L2") {
			l2++
		}
	}
	fmt.Printf("\nL2 events in the heterogeneous mix's top 10: %d (paper: 6)\n", l2)
	fmt.Println("-> mixed instruction/data footprints thrash L1 and pound the shared L2")
}

func report(title string, a *counterminer.Analysis) {
	fmt.Printf("%-30s top events:", title)
	for _, e := range a.TopEvents(10) {
		fmt.Printf(" %s(%.1f%%)", e.Abbrev, e.Importance)
	}
	fmt.Println()
}
