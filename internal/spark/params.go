// Package spark simulates the Spark-framework configuration space of
// the paper's §V-D case study. Configuration parameters couple to
// microarchitecture events: changing a parameter shifts the activity of
// the events it couples to, and performance responds through the
// workload's ground-truth IPC surface. On top of that substrate the
// package provides the case study's three artefacts: the
// parameter-event interaction ranking (Fig. 13), the tuning experiment
// (Fig. 14), and the method A vs. method B profiling-cost accounting
// (Fig. 15).
package spark

import (
	"fmt"
	"sort"
)

// Param is one Spark configuration parameter (Table IV).
type Param struct {
	// Name is the full Spark property name.
	Name string
	// Abbrev is the short code used in Fig. 13's axis labels.
	Abbrev string
	// Values is the sweep grid, in ascending order; Values[Default] is
	// the Spark default.
	Values []float64
	// Default indexes the default value in Values.
	Default int
	// Unit is a display unit ("MB", "s", "", ...).
	Unit string
}

// params is the Table IV catalogue. Values follow the Spark 2.0
// defaults documented at spark.apache.org/docs/latest/configuration.
var params = []Param{
	{Name: "spark.broadcast.blockSize", Abbrev: "bbs", Values: []float64{2, 4, 8, 16, 32}, Default: 1, Unit: "MB"},
	{Name: "spark.network.timeout", Abbrev: "nwt", Values: []float64{30, 60, 120, 240, 480}, Default: 2, Unit: "s"},
	{Name: "spark.executor.memory", Abbrev: "exm", Values: []float64{1, 2, 4, 8, 16}, Default: 0, Unit: "GB"},
	{Name: "spark.executor.cores", Abbrev: "exc", Values: []float64{1, 2, 4, 8, 16}, Default: 0, Unit: ""},
	{Name: "spark.default.parallelism", Abbrev: "dpl", Values: []float64{8, 16, 32, 64, 128}, Default: 0, Unit: ""},
	{Name: "spark.memory.fraction", Abbrev: "mmf", Values: []float64{0.2, 0.4, 0.6, 0.75, 0.9}, Default: 2, Unit: ""},
	{Name: "spark.kryoserializer.buffer", Abbrev: "kbf", Values: []float64{16, 32, 64, 128, 256}, Default: 2, Unit: "KB"},
	{Name: "spark.kryoserializer.buffer.max", Abbrev: "kbm", Values: []float64{16, 32, 64, 128, 256}, Default: 2, Unit: "MB"},
	{Name: "spark.reducer.maxSizeInFlight", Abbrev: "rdm", Values: []float64{12, 24, 48, 96, 192}, Default: 2, Unit: "MB"},
	{Name: "spark.shuffle.sort.bypassMergeThreshold", Abbrev: "ssb", Values: []float64{50, 100, 200, 400, 800}, Default: 1, Unit: ""},
	{Name: "spark.io.compression.snappy.blockSize", Abbrev: "ics", Values: []float64{8, 16, 32, 64, 128}, Default: 2, Unit: "KB"},
	{Name: "spark.shuffle.file.buffer", Abbrev: "sfb", Values: []float64{8, 16, 32, 64, 128}, Default: 2, Unit: "KB"},
	{Name: "spark.driver.memory", Abbrev: "dmm", Values: []float64{1, 2, 4, 8, 16}, Default: 0, Unit: "GB"},
	{Name: "spark.rpc.message.maxSize", Abbrev: "rms", Values: []float64{32, 64, 128, 256, 512}, Default: 1, Unit: "MB"},
	{Name: "spark.locality.wait", Abbrev: "lcw", Values: []float64{1, 2, 3, 6, 12}, Default: 2, Unit: "s"},
	{Name: "spark.speculation.quantile", Abbrev: "spq", Values: []float64{0.5, 0.6, 0.75, 0.9, 0.95}, Default: 2, Unit: ""},
}

// Params returns the Table IV parameter catalogue (a copy).
func Params() []Param {
	out := make([]Param, len(params))
	copy(out, params)
	return out
}

// ParamByAbbrev returns the parameter with the given abbreviation.
func ParamByAbbrev(abbrev string) (Param, error) {
	for _, p := range params {
		if p.Abbrev == abbrev {
			return p, nil
		}
	}
	return Param{}, fmt.Errorf("spark: unknown parameter %q", abbrev)
}

// ParamAbbrevs returns all parameter abbreviations, sorted.
func ParamAbbrevs() []string {
	out := make([]string, len(params))
	for i, p := range params {
		out[i] = p.Abbrev
	}
	sort.Strings(out)
	return out
}

// Config is an assignment of parameter abbreviation to a value index
// into the parameter's Values grid. Missing parameters take their
// defaults.
type Config map[string]int

// DefaultConfig returns the all-defaults configuration.
func DefaultConfig() Config {
	cfg := make(Config, len(params))
	for _, p := range params {
		cfg[p.Abbrev] = p.Default
	}
	return cfg
}

// With returns a copy of the config with one parameter overridden.
func (c Config) With(abbrev string, valueIdx int) Config {
	out := make(Config, len(c)+1)
	for k, v := range c {
		out[k] = v
	}
	out[abbrev] = valueIdx
	return out
}

// valueIdx returns the configured (or default) value index for a
// parameter, clamped to the grid.
func (c Config) valueIdx(p Param) int {
	i, ok := c[p.Abbrev]
	if !ok {
		return p.Default
	}
	if i < 0 {
		return 0
	}
	if i >= len(p.Values) {
		return len(p.Values) - 1
	}
	return i
}

// Deviation returns how far the configured value sits from the
// parameter's sweet spot, normalised to [0, 1] in grid steps. The sweet
// spot is the default index — Spark defaults are sane; the case study
// tunes away from and back toward them.
func (c Config) Deviation(p Param) float64 {
	i := c.valueIdx(p)
	d := i - p.Default
	if d < 0 {
		d = -d
	}
	max := p.Default
	if len(p.Values)-1-p.Default > max {
		max = len(p.Values) - 1 - p.Default
	}
	if max == 0 {
		return 0
	}
	return float64(d) / float64(max)
}
