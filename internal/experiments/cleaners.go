package experiments

import (
	"context"
	"fmt"

	"counterminer/internal/clean"
	"counterminer/internal/collector"
	"counterminer/internal/parallel"
	"counterminer/internal/sim"
)

// cleanerRates are the MLPX rates the head-to-head sweeps: the
// paper's lightest grid (10 events on 4 counters, G=3), the middle of
// the Fig. 3 range (24 events, G=6), and its heaviest point (36
// events, G=9), where multiplexing error — and the gap between
// correction strategies — is largest.
var cleanerRates = []int{10, 24, 36}

// Cleaners runs the cleaner head-to-head: every registered cleaner
// over the canonical MLPX rates, scored by the eq. (4) DTW error of
// ICACHE.MISSES against its OCOE ground truth. The raw (uncleaned)
// error column anchors each row; cfg.Cleaner is ignored — the whole
// point is to sweep the registry.
func Cleaners(ctx context.Context, cfg Config) (*Table, error) {
	cfg = cfg.WithDefaults()
	cat := sim.NewCatalogue()
	benches := cfg.benchmarks()
	if len(benches) > 3 {
		benches = benches[:3] // match the Fig. 3/7 workload-class slice
	}
	cleaners := clean.Names()

	// Flatten the (rate × benchmark × cleaner) grid so every cell runs
	// concurrently. The collector memoizes by (profile, run, mode,
	// events), so the cleaners of one cell family share the same three
	// collected runs and differ only in the repair strategy.
	type cell struct{ raw, cleaned float64 }
	col := collector.New(cat)
	nCells := len(cleanerRates) * len(benches) * len(cleaners)
	cells, err := parallel.MapCtx(ctx, nCells, cfg.Workers, func(k int) (cell, error) {
		ci := k / (len(benches) * len(cleaners))
		bi := k / len(cleaners) % len(benches)
		li := k % len(cleaners)
		prof, err := sim.ProfileByName(benches[bi])
		if err != nil {
			return cell{}, err
		}
		r, c, err := avgErrorWith(ctx, col, prof, cleanerRates[ci], cleaners[li], cfg)
		if err != nil {
			return cell{}, err
		}
		return cell{r, c}, nil
	})
	if err != nil {
		return nil, err
	}
	at := func(ci, bi, li int) cell {
		return cells[(ci*len(benches)+bi)*len(cleaners)+li]
	}

	t := &Table{
		ID:     "cleaners",
		Title:  "Cleaner head-to-head: ICACHE.MISSES DTW error vs MLPX rate",
		Header: append([]string{"events", "benchmark", "raw"}, cleaners...),
	}
	for ci, n := range cleanerRates {
		for bi, b := range benches {
			prof, err := sim.ProfileByName(b)
			if err != nil {
				return nil, err
			}
			row := []string{fmt.Sprint(n), prof.Abbrev, pct(at(ci, bi, 0).raw)}
			for li := range cleaners {
				row = append(row, pct(at(ci, bi, li).cleaned))
			}
			t.Rows = append(t.Rows, row)
		}
		// Per-rate averages close each block.
		avgRow := []string{fmt.Sprint(n), "AVG", ""}
		var sumRaw float64
		for bi := range benches {
			sumRaw += at(ci, bi, 0).raw
		}
		avgRow[2] = pct(sumRaw / float64(len(benches)))
		for li := range cleaners {
			var sum float64
			for bi := range benches {
				sum += at(ci, bi, li).cleaned
			}
			avgRow = append(avgRow, pct(sum/float64(len(benches))))
		}
		t.Rows = append(t.Rows, avgRow)
	}

	// Name the winner at the heaviest rate: the regime the Bayesian
	// cleaner's burst-inversion model targets.
	top := len(cleanerRates) - 1
	best, bestErr := "", 0.0
	for li, name := range cleaners {
		var sum float64
		for bi := range benches {
			sum += at(top, bi, li).cleaned
		}
		avg := sum / float64(len(benches))
		if best == "" || avg < bestErr {
			best, bestErr = name, avg
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("at %d events the lowest average error is %s at %s",
			cleanerRates[top], best, pct(bestErr)),
		"threshold-knn is the paper's §III-B pipeline; bayes inverts the MLPX burst physics with a precision-weighted posterior")
	return t, nil
}
