package cluster

import (
	"fmt"
	"testing"
	"time"
)

// BenchmarkRingLookup measures the scheduler's routing hot path: every
// dispatched job hashes its grouping key onto the ring once, so this
// bound is paid per job even on a healthy fleet.
func BenchmarkRingLookup(b *testing.B) {
	r := NewRing(0)
	for i := 0; i < 16; i++ {
		r.Add(NodeID(fmt.Sprintf("worker-%d", i)))
	}
	keys := make([]string, 64)
	for i := range keys {
		keys[i] = fmt.Sprintf("benchmark-%d\x00", i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := r.Lookup(keys[i%len(keys)]); !ok {
			b.Fatal("empty ring")
		}
	}
}

// BenchmarkRingSuccessors measures the requeue path's preference-order
// walk — paid only on failover, but inside the lease-expiry window, so
// it must stay cheap.
func BenchmarkRingSuccessors(b *testing.B) {
	r := NewRing(0)
	for i := 0; i < 16; i++ {
		r.Add(NodeID(fmt.Sprintf("worker-%d", i)))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := r.Successors("pagerank\x00"); len(got) != 16 {
			b.Fatalf("successors = %d members", len(got))
		}
	}
}

// BenchmarkHeartbeat measures the registry's lease-renewal hot path:
// every worker hits this on every heartbeat interval, so coordinator
// overhead scales with fleet size times this cost.
func BenchmarkHeartbeat(b *testing.B) {
	now := time.Unix(0, 0)
	r := NewRegistry(2*time.Second, func() time.Time { return now })
	ids := make([]NodeID, 16)
	for i := range ids {
		ids[i] = NodeID(fmt.Sprintf("worker-%d", i))
		r.Register(ids[i], "http://127.0.0.1:0")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !r.Heartbeat(ids[i%len(ids)]) {
			b.Fatal("heartbeat from registered worker rejected")
		}
	}
}

// BenchmarkRegistryPick measures dispatch's worker selection with a
// populated avoid set — the shape the retry loop sees mid-failover.
func BenchmarkRegistryPick(b *testing.B) {
	now := time.Unix(0, 0)
	r := NewRegistry(2*time.Second, func() time.Time { return now })
	for i := 0; i < 16; i++ {
		r.Register(NodeID(fmt.Sprintf("worker-%d", i)), "http://127.0.0.1:0")
	}
	avoid := map[NodeID]bool{"worker-3": true, "worker-7": true}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, ok := r.Pick("kmeans\x00", avoid); !ok {
			b.Fatal("no pick from live registry")
		}
	}
}
