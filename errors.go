package counterminer

import (
	"errors"
	"fmt"
	"strings"
)

// The pipeline's typed error taxonomy. Every failure Analyze can return
// for operational (rather than configuration) reasons wraps one of
// these sentinels, so callers can dispatch with errors.Is and recover
// detail with errors.As:
//
//	var qe *counterminer.QuorumError
//	if errors.As(err, &qe) { ... qe.Succeeded, qe.Failures ... }
var (
	// ErrRunFailed marks one benchmark run that exhausted its Collect
	// retries.
	ErrRunFailed = errors.New("counterminer: run failed")
	// ErrSeriesInvalid marks collected series data that validation
	// rejected (the analysis cannot proceed on what survived).
	ErrSeriesInvalid = errors.New("counterminer: series invalid")
	// ErrQuorum marks an analysis abandoned because fewer than MinRuns
	// of the requested runs could be collected.
	ErrQuorum = errors.New("counterminer: run quorum not met")
	// ErrCanceled marks an analysis abandoned because its context was
	// canceled or its deadline expired. The concrete error is a
	// *CancelError naming the stage that observed the cancellation; it
	// also matches context.Canceled / context.DeadlineExceeded via
	// errors.Is, so callers can dispatch either way.
	ErrCanceled = errors.New("counterminer: analysis canceled")
)

// CancelError reports an analysis abandoned at a stage boundary (or
// inside a stage's interior loop) because the context was done. It
// matches ErrCanceled under errors.Is and unwraps to the underlying
// context error (context.Canceled or context.DeadlineExceeded).
type CancelError struct {
	// Stage names the pipeline stage — or, for experiment sweeps, the
	// experiment — that observed the cancellation.
	Stage string
	// Err is the context's error.
	Err error
}

func (e *CancelError) Error() string {
	return fmt.Sprintf("counterminer: canceled during %s: %v", e.Stage, e.Err)
}

// Unwrap exposes the context error to errors.Is/As.
func (e *CancelError) Unwrap() error { return e.Err }

// Is matches ErrCanceled.
func (e *CancelError) Is(target error) bool { return target == ErrCanceled }

// RunError reports one run that failed after all retry attempts. It
// matches ErrRunFailed under errors.Is and unwraps to the final
// attempt's underlying error.
type RunError struct {
	// Benchmark and RunID locate the failed run.
	Benchmark string
	RunID     int
	// Attempts is how many Collect attempts were made.
	Attempts int
	// Err is the last attempt's error.
	Err error
}

func (e *RunError) Error() string {
	return fmt.Sprintf("counterminer: %s/run %d failed after %d attempt(s): %v",
		e.Benchmark, e.RunID, e.Attempts, e.Err)
}

// Unwrap exposes the final attempt's error to errors.Is/As.
func (e *RunError) Unwrap() error { return e.Err }

// Is matches ErrRunFailed.
func (e *RunError) Is(target error) bool { return target == ErrRunFailed }

// QuorumError reports an analysis abandoned because too few runs
// succeeded. It matches ErrQuorum under errors.Is.
type QuorumError struct {
	// Benchmark is the analysed workload.
	Benchmark string
	// Succeeded, Required, and Attempted count the collection outcome:
	// Succeeded of Attempted runs completed, Required were needed.
	Succeeded, Required, Attempted int
	// Failures describes the runs that failed.
	Failures []RunFailure
}

func (e *QuorumError) Error() string {
	return fmt.Sprintf("counterminer: %s: %d of %d runs succeeded, need %d: quorum not met",
		e.Benchmark, e.Succeeded, e.Attempted, e.Required)
}

// Is matches ErrQuorum.
func (e *QuorumError) Is(target error) bool { return target == ErrQuorum }

// SeriesError reports an analysis abandoned because validation
// quarantined too many event columns. It matches ErrSeriesInvalid under
// errors.Is.
type SeriesError struct {
	// Benchmark is the analysed workload.
	Benchmark string
	// Remaining is how many usable event columns survived validation
	// (an analysis needs at least two).
	Remaining int
	// Quarantined describes the rejected columns.
	Quarantined []Quarantine
}

func (e *SeriesError) Error() string {
	reasons := make([]string, 0, len(e.Quarantined))
	for _, q := range e.Quarantined {
		reasons = append(reasons, q.Event+": "+q.Reason)
		if len(reasons) == 3 && len(e.Quarantined) > 3 {
			reasons = append(reasons, fmt.Sprintf("… %d more", len(e.Quarantined)-3))
			break
		}
	}
	return fmt.Sprintf("counterminer: %s: only %d usable event column(s) after quarantining %d (%s)",
		e.Benchmark, e.Remaining, len(e.Quarantined), strings.Join(reasons, "; "))
}

// Is matches ErrSeriesInvalid.
func (e *SeriesError) Is(target error) bool { return target == ErrSeriesInvalid }
