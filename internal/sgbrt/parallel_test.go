package sgbrt

import (
	"math/rand"
	"reflect"
	"testing"
)

// TestBestSplitTieBreakFeature: two identical feature columns produce
// identical gains for every candidate split; the lowest feature index
// must win regardless of scan order or worker count.
func TestBestSplitTieBreakFeature(t *testing.T) {
	// Feature 1 duplicates feature 0; feature 2 is constant noise-free
	// but uninformative.
	X := [][]float64{
		{0, 0, 7}, {1, 1, 7}, {2, 2, 7}, {3, 3, 7},
	}
	y := []float64{0, 0, 10, 10}
	for _, workers := range []int{1, 8} {
		tree, err := buildTree(X, y, allIdx(4), TreeParams{MaxDepth: 1, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		root := tree.nodes[0]
		if root.feature != 0 {
			t.Errorf("workers=%d: root split feature = %d, want 0 (lowest index wins ties)", workers, root.feature)
		}
		if root.threshold != 1.5 {
			t.Errorf("workers=%d: root threshold = %v, want 1.5", workers, root.threshold)
		}
	}
}

// TestBestSplitTieBreakThreshold: a symmetric target gives two
// thresholds of one feature the same gain; the lower threshold wins.
func TestBestSplitTieBreakThreshold(t *testing.T) {
	// y = [1,0,0,1] over x = [0,1,2,3]: splitting at 0.5 and at 2.5
	// yield the same gain; 1.5 is strictly worse.
	X := [][]float64{{0}, {1}, {2}, {3}}
	y := []float64{1, 0, 0, 1}
	tree, err := buildTree(X, y, allIdx(4), TreeParams{MaxDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	root := tree.nodes[0]
	if root.feature != 0 || root.threshold != 0.5 {
		t.Errorf("root split = (feature %d, threshold %v), want (0, 0.5): lowest threshold wins ties",
			root.feature, root.threshold)
	}
}

// TestFitParallelMatchesSerial: the fitted ensemble must be
// bit-identical for any worker count — tree structure, predictions,
// and importances.
func TestFitParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n, p := 300, 12
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		row := make([]float64, p)
		for j := range row {
			row[j] = rng.Float64() * 50
		}
		X[i] = row
		y[i] = 2*row[0] - row[1] + row[2]*row[3]/25 + rng.NormFloat64()*0.5
	}
	base := Params{Trees: 25, Seed: 9, ColSample: 0.6}

	serial, err := Fit(X, y, withWorkers(base, 1))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		par, err := Fit(X, y, withWorkers(base, workers))
		if err != nil {
			t.Fatal(err)
		}
		if len(par.trees) != len(serial.trees) {
			t.Fatalf("workers=%d: %d trees, serial has %d", workers, len(par.trees), len(serial.trees))
		}
		for k := range par.trees {
			if !reflect.DeepEqual(par.trees[k].nodes, serial.trees[k].nodes) {
				t.Fatalf("workers=%d: tree %d differs from serial", workers, k)
			}
		}
		if !reflect.DeepEqual(par.Importances(), serial.Importances()) {
			t.Errorf("workers=%d: importances differ from serial", workers)
		}
		ps, err1 := serial.PredictAll(X)
		pp, err2 := par.PredictAll(X)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if !reflect.DeepEqual(ps, pp) {
			t.Errorf("workers=%d: predictions differ from serial", workers)
		}
	}
}

func withWorkers(p Params, w int) Params {
	p.Workers = w
	return p
}

// TestBuildTreeOrderedDoesNotMutateOrders guards the presorted-orders
// contract: Fit shares fullOrders across stages, so induction must
// leave its input intact.
func TestBuildTreeOrderedDoesNotMutateOrders(t *testing.T) {
	X, y := benchMatrix(50, 4)
	orders := sortOrders(X, allIdx(50))
	want := make([][]int, len(orders))
	for f := range orders {
		want[f] = append([]int(nil), orders[f]...)
	}
	if _, err := buildTreeOrdered(X, y, orders, TreeParams{MaxDepth: 4}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(orders, want) {
		t.Error("buildTreeOrdered mutated its input orders")
	}
}
