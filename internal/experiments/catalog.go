package experiments

import (
	"context"
	"fmt"

	"counterminer/internal/sim"
	"counterminer/internal/spark"
)

// Table2 regenerates Table II: the benchmark inventory.
func Table2(ctx context.Context, cfg Config) (*Table, error) {
	t := &Table{
		ID:     "tab2",
		Title:  "Benchmarks (8 CloudSuite 3.0 + 8 HiBench/Spark 2.0)",
		Header: []string{"benchmark", "abbrev", "suite", "framework", "category", "tiers"},
	}
	for _, p := range sim.Profiles() {
		t.Rows = append(t.Rows, []string{
			p.Name, p.Abbrev, p.Suite.String(), p.Framework, p.Category, fmt.Sprint(p.Tiers),
		})
	}
	t.Notes = append(t.Notes, "CloudSuite uses diverse frameworks; HiBench uses Spark 2.0 throughout")
	return t, nil
}

// Table3 regenerates Table III: the event name/abbreviation catalogue
// for every event appearing in the importance figures.
func Table3(ctx context.Context, cfg Config) (*Table, error) {
	cat := sim.NewCatalogue()
	t := &Table{
		ID:     "tab3",
		Title:  "Event names and descriptions (figure abbreviations)",
		Header: []string{"abbrev", "event", "distribution", "description"},
	}
	for _, ab := range cat.NamedAbbrevs() {
		ev, _ := cat.ByAbbrev(ab)
		t.Rows = append(t.Rows, []string{ev.Abbrev, ev.Name, ev.Dist.String(), ev.Desc})
	}
	gauss, gev := cat.DistCensus()
	t.Notes = append(t.Notes, fmt.Sprintf(
		"full catalogue: %d events, %d gaussian / %d long-tail (paper census: 100/129 of 229)",
		cat.Len(), gauss, gev))
	return t, nil
}

// Table4 regenerates Table IV: Spark configuration parameter names and
// abbreviations.
func Table4(ctx context.Context, cfg Config) (*Table, error) {
	t := &Table{
		ID:     "tab4",
		Title:  "Spark configuration parameters",
		Header: []string{"abbrev", "parameter", "grid", "default", "unit"},
	}
	for _, p := range spark.Params() {
		grid := ""
		for i, v := range p.Values {
			if i > 0 {
				grid += "/"
			}
			grid += fmt.Sprintf("%g", v)
		}
		t.Rows = append(t.Rows, []string{
			p.Abbrev, p.Name, grid, fmt.Sprintf("%g", p.Values[p.Default]), p.Unit,
		})
	}
	return t, nil
}
