package stats

import (
	"errors"
	"math"
	"sort"
)

// AndersonDarling computes the Anderson-Darling A² statistic of the
// sample xs against the fitted distribution dist. Smaller values
// indicate a better fit. The paper uses scipy.stats.anderson for the
// same census; this is the textbook statistic
//
//	A² = -n - (1/n) Σ (2i-1)[ln F(x_(i)) + ln(1-F(x_(n+1-i)))]
//
// with order statistics x_(1) <= ... <= x_(n).
func AndersonDarling(xs []float64, dist Dist) (float64, error) {
	n := len(xs)
	if n < 3 {
		return 0, errors.New("stats: AndersonDarling needs >= 3 samples")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)

	fn := float64(n)
	sum := 0.0
	for i := 0; i < n; i++ {
		fi := clampProb(dist.CDF(sorted[i]))
		fj := clampProb(dist.CDF(sorted[n-1-i]))
		sum += (2*float64(i) + 1) * (math.Log(fi) + math.Log(1-fj))
	}
	return -fn - sum/fn, nil
}

// NormalityResult reports the outcome of an Anderson-Darling normality
// test.
type NormalityResult struct {
	// A2 is the Anderson-Darling statistic adjusted for estimated
	// parameters (Stephens' correction).
	A2 float64
	// Critical holds the critical values for the significance levels in
	// Levels.
	Critical []float64
	// Levels holds significance levels in percent (15, 10, 5, 2.5, 1),
	// matching scipy.stats.anderson's normal-case output.
	Levels []float64
	// Normal reports whether normality is NOT rejected at the 5% level.
	Normal bool
}

// andersonNormalCritical are the case-3 (both parameters estimated)
// critical values for the normal distribution (Stephens 1974), as used
// by scipy.stats.anderson.
var (
	andersonNormalLevels   = []float64{15, 10, 5, 2.5, 1}
	andersonNormalCritical = []float64{0.576, 0.656, 0.787, 0.918, 1.092}
)

// TestNormality runs the Anderson-Darling normality test with estimated
// mean and standard deviation, applying Stephens' small-sample
// correction. It mirrors scipy.stats.anderson(xs, 'norm').
func TestNormality(xs []float64) (NormalityResult, error) {
	n := len(xs)
	if n < 8 {
		return NormalityResult{}, errors.New("stats: TestNormality needs >= 8 samples")
	}
	g, err := FitGaussian(xs)
	if err != nil {
		return NormalityResult{}, err
	}
	a2, err := AndersonDarling(xs, g)
	if err != nil {
		return NormalityResult{}, err
	}
	fn := float64(n)
	a2 *= 1 + 4/fn - 25/(fn*fn) // Stephens' correction for estimated params

	res := NormalityResult{
		A2:       a2,
		Critical: append([]float64(nil), andersonNormalCritical...),
		Levels:   append([]float64(nil), andersonNormalLevels...),
	}
	res.Normal = a2 < andersonNormalCritical[2] // 5% level
	return res, nil
}

// BestFit reproduces the census step of §III-B: it first runs the
// Anderson-Darling normality test; if normality is not rejected the
// event is classified Gaussian (the paper found 100 of 229 events
// Gaussian). Otherwise the logistic, Gumbel, and GEV long-tail families
// are fitted and the one with the smallest Anderson-Darling statistic
// wins (the paper found GEV fits the long tails best).
func BestFit(xs []float64) (Dist, float64, error) {
	if len(xs) < 8 {
		return nil, 0, errors.New("stats: BestFit needs >= 8 samples")
	}
	if res, err := TestNormality(xs); err == nil && res.Normal {
		g, err := FitGaussian(xs)
		if err == nil {
			a2, err := AndersonDarling(xs, g)
			if err == nil {
				return g, a2, nil
			}
		}
	}

	var best Dist
	bestA2 := math.Inf(1)
	if g, err := FitGaussian(xs); err == nil {
		if a2, err := AndersonDarling(xs, g); err == nil && a2 < bestA2 {
			best, bestA2 = g, a2
		}
	}
	if l, err := FitLogistic(xs); err == nil {
		if a2, err := AndersonDarling(xs, l); err == nil && a2 < bestA2 {
			best, bestA2 = l, a2
		}
	}
	if gm, err := FitGumbel(xs); err == nil {
		if a2, err := AndersonDarling(xs, gm); err == nil && a2 < bestA2 {
			best, bestA2 = gm, a2
		}
	}
	if gv, err := FitGEV(xs); err == nil && gv.Sigma > 0 {
		if a2, err := AndersonDarling(xs, gv); err == nil && a2 < bestA2 {
			best, bestA2 = gv, a2
		}
	}
	if best == nil {
		return nil, 0, errors.New("stats: BestFit: no family could be fitted")
	}
	return best, bestA2, nil
}

// clampProb keeps CDF outputs strictly inside (0, 1) so the logs in the
// A² statistic stay finite.
func clampProb(p float64) float64 {
	const eps = 1e-12
	if p < eps {
		return eps
	}
	if p > 1-eps {
		return 1 - eps
	}
	return p
}
