package collector

import (
	"testing"

	"counterminer/internal/mlpx"
	"counterminer/internal/sim"
)

func newTestCollector(t *testing.T) (*Collector, sim.Profile) {
	t.Helper()
	c := New(sim.NewCatalogue())
	p, err := sim.ProfileByName("wordcount")
	if err != nil {
		t.Fatal(err)
	}
	return c, p
}

func TestCollectOCOE(t *testing.T) {
	c, p := newTestCollector(t)
	run, err := c.Collect(p, 1, OCOE, []string{"ICACHE.MISSES", "IDQ.DSB_UOPS"})
	if err != nil {
		t.Fatal(err)
	}
	if run.Mode != OCOE || run.Groups != 1 {
		t.Errorf("run = %+v", run)
	}
	if run.Series.Len() != 2 {
		t.Errorf("series count = %d", run.Series.Len())
	}
	if len(run.IPC) == 0 {
		t.Error("no IPC measured")
	}
	s, ok := run.Series.Get("ICACHE.MISSES")
	if !ok || s.Len() != len(run.IPC) {
		t.Errorf("series/IPC length mismatch: %v vs %d", s, len(run.IPC))
	}
}

func TestCollectOCOECapacity(t *testing.T) {
	c, p := newTestCollector(t)
	events := mlpx.DefaultEventSet(c.Catalogue(), 5)
	if _, err := c.Collect(p, 1, OCOE, events); err == nil {
		t.Error("OCOE with 5 events should error")
	}
}

func TestCollectMLPX(t *testing.T) {
	c, p := newTestCollector(t)
	events := mlpx.DefaultEventSet(c.Catalogue(), 10)
	run, err := c.Collect(p, 1, MLPX, events)
	if err != nil {
		t.Fatal(err)
	}
	if run.Groups != 3 {
		t.Errorf("groups = %d, want 3", run.Groups)
	}
	if run.Series.Len() != 10 {
		t.Errorf("series count = %d", run.Series.Len())
	}
}

func TestCollectValidation(t *testing.T) {
	c, p := newTestCollector(t)
	if _, err := c.Collect(p, 1, OCOE, nil); err == nil {
		t.Error("no events should error")
	}
	if _, err := c.Collect(p, 1, Mode(99), []string{"ICACHE.MISSES"}); err == nil {
		t.Error("unknown mode should error")
	}
	if _, err := c.Collect(sim.Profile{Name: "bad"}, 1, OCOE, []string{"ICACHE.MISSES"}); err == nil {
		t.Error("invalid profile should error")
	}
}

func TestSameRunIDSameBehaviour(t *testing.T) {
	c, p := newTestCollector(t)
	r1, err := c.Collect(p, 7, OCOE, []string{"ICACHE.MISSES"})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := c.Collect(p, 7, OCOE, []string{"ICACHE.MISSES"})
	if err != nil {
		t.Fatal(err)
	}
	s1, _ := r1.Series.Get("ICACHE.MISSES")
	s2, _ := r2.Series.Get("ICACHE.MISSES")
	for i := range s1.Values {
		if s1.Values[i] != s2.Values[i] {
			t.Fatal("same run ID produced different measurements")
		}
	}
}

func TestDifferentRunsDifferentLengths(t *testing.T) {
	c, p := newTestCollector(t)
	lengths := map[int]bool{}
	for run := 0; run < 8; run++ {
		r, err := c.Collect(p, run, OCOE, []string{"ICACHE.MISSES"})
		if err != nil {
			t.Fatal(err)
		}
		lengths[len(r.IPC)] = true
	}
	if len(lengths) < 3 {
		t.Errorf("8 runs produced only %d distinct lengths", len(lengths))
	}
}

func TestCollectOCOESweep(t *testing.T) {
	c, p := newTestCollector(t)
	events := mlpx.DefaultEventSet(c.Catalogue(), 10)
	runs, err := c.CollectOCOESweep(p, 100, events)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 3 { // ceil(10/4)
		t.Fatalf("sweep runs = %d, want 3", len(runs))
	}
	total := 0
	for i, r := range runs {
		if r.RunID != 100+i {
			t.Errorf("run %d has RunID %d", i, r.RunID)
		}
		if r.Mode != OCOE {
			t.Errorf("sweep run mode = %v", r.Mode)
		}
		total += r.Series.Len()
	}
	if total != 10 {
		t.Errorf("sweep covered %d events, want 10", total)
	}
	if _, err := c.CollectOCOESweep(p, 0, nil); err == nil {
		t.Error("empty sweep should error")
	}
}

func TestTrainingMatrix(t *testing.T) {
	c, p := newTestCollector(t)
	events := mlpx.DefaultEventSet(c.Catalogue(), 6)
	run, err := c.Collect(p, 1, MLPX, events)
	if err != nil {
		t.Fatal(err)
	}
	X, y, err := run.TrainingMatrix(events)
	if err != nil {
		t.Fatal(err)
	}
	if len(X) != len(y) {
		t.Fatalf("X rows %d != y %d", len(X), len(y))
	}
	if len(X[0]) != 6 {
		t.Errorf("X cols = %d", len(X[0]))
	}
	if _, _, err := run.TrainingMatrix([]string{"NOPE"}); err == nil {
		t.Error("unknown event should error")
	}
}

func TestModeString(t *testing.T) {
	if OCOE.String() != "OCOE" || MLPX.String() != "MLPX" {
		t.Error("Mode.String mismatch")
	}
}
