package batch

import (
	"fmt"
	"testing"
)

// BenchmarkBatchSchedule measures planning a duplicate-heavy sweep:
// 512 jobs over 8 benchmarks where two thirds of the jobs are exact
// duplicates — the shape a scraper replaying a benchmark sweep
// produces. Wired into scripts/bench.sh so BENCH_<n>.json captures
// batch numbers alongside the analysis-engine hot paths.
func BenchmarkBatchSchedule(b *testing.B) {
	const jobs = 512
	batch := make([]Item, jobs)
	for i := range batch {
		batch[i] = Item{
			Index: i,
			Key:   fmt.Sprintf("key-%d", i%(jobs/3)),
			Group: fmt.Sprintf("bench-%d", i%8),
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan := Schedule(batch)
		if len(plan.Order) == 0 {
			b.Fatal("empty plan")
		}
	}
}
