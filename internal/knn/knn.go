// Package knn implements K-nearest-neighbour regression, used by the
// data cleaner (§III-B-2) to fill in missing event values: a missing
// value is replaced by the average of its k nearest neighbours. The
// paper evaluated k in 3..8 and settled on k = 5.
package knn

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// DefaultK is the neighbour count the paper found accurate enough.
const DefaultK = 5

// Regressor is a KNN regressor over (x, y) pairs with scalar features.
// For time-series imputation the feature is the sample index, so "near"
// means "temporally close".
type Regressor struct {
	k  int
	xs []float64
	ys []float64
}

// NewRegressor returns a KNN regressor with the given k (DefaultK if
// k <= 0).
func NewRegressor(k int) *Regressor {
	if k <= 0 {
		k = DefaultK
	}
	return &Regressor{k: k}
}

// K returns the configured neighbour count.
func (r *Regressor) K() int { return r.k }

// Fit stores the training pairs. It returns an error when the inputs
// are empty or of unequal length.
func (r *Regressor) Fit(xs, ys []float64) error {
	if len(xs) == 0 {
		return errors.New("knn: empty training set")
	}
	if len(xs) != len(ys) {
		return fmt.Errorf("knn: len(xs)=%d != len(ys)=%d", len(xs), len(ys))
	}
	r.xs = append([]float64(nil), xs...)
	r.ys = append([]float64(nil), ys...)
	return nil
}

// neighbour is one candidate training point during prediction.
type neighbour struct {
	dist float64
	y    float64
}

// Predict returns the mean y of the k nearest training points to x.
// When fewer than k points exist, all of them are used.
func (r *Regressor) Predict(x float64) (float64, error) {
	if len(r.xs) == 0 {
		return 0, errors.New("knn: predict before fit")
	}
	return r.predictWith(make([]neighbour, len(r.xs)), x), nil
}

// predictWith is Predict over a caller-owned scratch buffer (length
// len(r.xs)), so bulk imputation sorts without re-allocating per point.
func (r *Regressor) predictWith(ns []neighbour, x float64) float64 {
	for i := range r.xs {
		ns[i] = neighbour{dist: math.Abs(r.xs[i] - x), y: r.ys[i]}
	}
	sort.Slice(ns, func(i, j int) bool { return ns[i].dist < ns[j].dist })
	k := r.k
	if k > len(ns) {
		k = len(ns)
	}
	sum := 0.0
	for i := 0; i < k; i++ {
		sum += ns[i].y
	}
	return sum / float64(k)
}

// ImputeSeries fills the positions listed in missing (indices into
// values) using KNN regression on sample index, training only on the
// non-missing positions. It returns a new slice; values is not
// modified. k <= 0 selects DefaultK.
func ImputeSeries(values []float64, missing []int, k int) ([]float64, error) {
	if len(values) == 0 {
		return nil, errors.New("knn: impute on empty series")
	}
	isMissing := make(map[int]bool, len(missing))
	for _, i := range missing {
		if i < 0 || i >= len(values) {
			return nil, fmt.Errorf("knn: missing index %d out of range [0,%d)", i, len(values))
		}
		isMissing[i] = true
	}
	var xs, ys []float64
	for i, v := range values {
		if !isMissing[i] {
			xs = append(xs, float64(i))
			ys = append(ys, v)
		}
	}
	out := append([]float64(nil), values...)
	if len(xs) == 0 {
		// Everything is missing; nothing to learn from. Leave as-is.
		return out, errors.New("knn: all values missing")
	}
	reg := NewRegressor(k)
	if err := reg.Fit(xs, ys); err != nil {
		return nil, err
	}
	ns := make([]neighbour, len(xs))
	for _, i := range missing {
		out[i] = reg.predictWith(ns, float64(i))
	}
	return out, nil
}
