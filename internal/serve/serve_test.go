package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	counterminer "counterminer"
	"counterminer/internal/rank"
	"counterminer/internal/store"
)

// waitFor polls cond until it returns true or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// --- queue -----------------------------------------------------------------

func TestQueueAdmissionOverload(t *testing.T) {
	q := NewQueue(1, 1, 0)
	started := make(chan struct{})
	release := make(chan struct{})
	if err := q.Submit(func(ctx context.Context) {
		close(started)
		<-release
	}); err != nil {
		t.Fatalf("first submit: %v", err)
	}
	<-started
	if err := q.Submit(func(ctx context.Context) {}); err != nil {
		t.Fatalf("buffered submit: %v", err)
	}
	// Worker busy, buffer full: the third job must be rejected, typed.
	err := q.Submit(func(ctx context.Context) {})
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overload submit error = %v, want ErrQueueFull", err)
	}
	close(release)
	q.Drain()
	if got := q.Executed(); got != 2 {
		t.Errorf("executed = %d, want 2", got)
	}
}

func TestQueueDrainCancelsQueuedViaCancelError(t *testing.T) {
	q := NewQueue(1, 2, 0)
	started := make(chan struct{})
	release := make(chan struct{})
	if err := q.Submit(func(ctx context.Context) {
		close(started)
		<-release
	}); err != nil {
		t.Fatal(err)
	}
	<-started

	// The queued job runs a real analysis under its job context; drain
	// cancels that context before the job starts, so the pipeline must
	// return through its typed *CancelError path.
	pipe, err := counterminer.NewPipeline(counterminer.Options{Runs: 1, Trees: 2, SkipEIR: true})
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	if err := q.Submit(func(ctx context.Context) {
		_, aerr := pipe.AnalyzeContext(ctx, "wordcount")
		errc <- aerr
	}); err != nil {
		t.Fatal(err)
	}

	drained := make(chan struct{})
	go func() {
		q.Drain()
		close(drained)
	}()
	// Wait until Drain has marked the queue draining (it cancels every
	// queued job under the same critical section), then let the active
	// job finish so the worker reaches the queued, already-canceled one.
	waitFor(t, "queue draining", func() bool {
		return errors.Is(q.Submit(func(context.Context) {}), ErrDraining)
	})
	close(release)
	<-drained

	aerr := <-errc
	if !errors.Is(aerr, counterminer.ErrCanceled) {
		t.Fatalf("queued job error = %v, want ErrCanceled", aerr)
	}
	var ce *counterminer.CancelError
	if !errors.As(aerr, &ce) {
		t.Fatalf("queued job error %v is not a *CancelError", aerr)
	}
	if ce.Stage != counterminer.StageCollect {
		t.Errorf("canceled stage = %q, want %q", ce.Stage, counterminer.StageCollect)
	}
	if err := q.Submit(func(ctx context.Context) {}); !errors.Is(err, ErrDraining) {
		t.Errorf("submit after drain = %v, want ErrDraining", err)
	}
}

func TestQueueBudgetDeadline(t *testing.T) {
	q := NewQueue(1, 0, 20*time.Millisecond)
	errc := make(chan error, 1)
	waitFor(t, "budget job admitted", func() bool {
		err := q.Submit(func(ctx context.Context) {
			<-ctx.Done()
			errc <- ctx.Err()
		})
		return err == nil
	})
	if err := <-errc; !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("budget ctx error = %v, want DeadlineExceeded", err)
	}
	q.Drain()
}

// --- cache -----------------------------------------------------------------

func TestCacheSingleflightSharesOneExecution(t *testing.T) {
	c := NewCache[*counterminer.Analysis](4)
	ana, ok, call, leader := c.Acquire("k")
	if ana != nil || ok || call == nil || !leader {
		t.Fatalf("first acquire: ana=%v ok=%v call=%v leader=%v", ana, ok, call, leader)
	}
	ana2, ok2, call2, leader2 := c.Acquire("k")
	if ana2 != nil || ok2 || leader2 || call2 != call {
		t.Fatalf("second acquire should follow the in-flight call")
	}
	want := &counterminer.Analysis{Benchmark: "wordcount"}
	c.Complete("k", call, want, nil)
	<-call2.Done
	if call2.Val != want || call2.Err != nil {
		t.Fatalf("follower result = (%v, %v)", call2.Val, call2.Err)
	}
	hit, ok, _, _ := c.Acquire("k")
	if !ok || hit != want {
		t.Fatalf("post-completion acquire should hit the cache")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache[*counterminer.Analysis](2)
	for _, k := range []string{"a", "b", "c"} {
		_, _, call, leader := c.Acquire(k)
		if !leader {
			t.Fatalf("key %q should lead", k)
		}
		c.Complete(k, call, &counterminer.Analysis{Benchmark: k}, nil)
	}
	if c.Len() != 2 || c.Evictions() != 1 {
		t.Fatalf("len=%d evictions=%d, want 2/1", c.Len(), c.Evictions())
	}
	if _, ok, _, _ := c.Acquire("a"); ok {
		t.Error("oldest entry should have been evicted")
	}
	if _, ok, _, _ := c.Acquire("c"); !ok {
		t.Error("newest entry should be cached")
	}
}

func TestCacheErrorsNotCached(t *testing.T) {
	c := NewCache[*counterminer.Analysis](2)
	_, _, call, _ := c.Acquire("k")
	boom := errors.New("boom")
	c.Complete("k", call, nil, boom)
	if call.Err != boom {
		t.Fatalf("call err = %v", call.Err)
	}
	_, _, _, leader := c.Acquire("k")
	if !leader {
		t.Error("a failed key must re-lead, not replay the error")
	}
}

// --- content address -------------------------------------------------------

func TestKeyCanonicalization(t *testing.T) {
	base := Key("wordcount", "", nil, counterminer.Options{})
	explicitDefaults := Key("wordcount", "", nil, counterminer.Options{
		Runs: 3, Trees: 80, PruneStep: rank.DefaultPruneStep, TopK: 10, Seed: 1, MinRuns: 3,
	})
	if base != explicitDefaults {
		t.Error("zero options and explicit defaults must collide")
	}
	// Worker counts never change results, so they never change keys.
	if got := Key("wordcount", "", nil, counterminer.Options{Workers: 7}); got != base {
		t.Error("Workers must not affect the key")
	}
	reqOpts := counterminer.Options{}
	reqOpts.CleanOptions.Workers = 3
	if got := Key("wordcount", "", nil, reqOpts); got != base {
		t.Error("CleanOptions.Workers must not affect the key")
	}
	if got := Key("wordcount", "", nil, counterminer.Options{Seed: 2}); got == base {
		t.Error("Seed must affect the key")
	}
	if got := Key("sort", "", nil, counterminer.Options{}); got == base {
		t.Error("benchmark must affect the key")
	}
	if got := Key("wordcount", "sort", nil, counterminer.Options{}); got == base {
		t.Error("co-location must affect the key")
	}
	ab := Key("wordcount", "", []string{"A", "B"}, counterminer.Options{})
	ba := Key("wordcount", "", []string{"B", "A"}, counterminer.Options{})
	if ab == ba {
		t.Error("event order must affect the key (column order drives tie-breaks)")
	}
}

// --- metrics ---------------------------------------------------------------

func TestMetricsStageHistograms(t *testing.T) {
	m := NewMetrics()
	ana := &counterminer.Analysis{
		Stages: []counterminer.StageTiming{
			{Stage: counterminer.StageCollect, Duration: 3 * time.Millisecond},
			{Stage: counterminer.StageRank, Duration: 700 * time.Millisecond},
		},
	}
	m.ObserveAnalysis(ana, nil)
	m.ObserveAnalysis(nil, &counterminer.CancelError{Stage: "Rank", Err: context.Canceled})
	snap := m.SnapshotFrom(gauges{})
	if snap.Analyses.Completed != 1 || snap.Analyses.Canceled != 1 {
		t.Fatalf("analyses = %+v", snap.Analyses)
	}
	names := counterminer.StageNames()
	if len(snap.StageLatency) != len(names) {
		t.Fatalf("stage series = %d, want %d (pre-registered plan)", len(snap.StageLatency), len(names))
	}
	for i, sh := range snap.StageLatency {
		if sh.Stage != names[i] {
			t.Errorf("stage %d = %q, want plan order %q", i, sh.Stage, names[i])
		}
	}
	collect := snap.StageLatency[0]
	if collect.Count != 1 {
		t.Fatalf("collect count = %d", collect.Count)
	}
	// 3ms lands in the le<=5ms bucket; cumulative counts reach 1 there
	// and stay 1 through +Inf.
	for _, b := range collect.Buckets {
		want := uint64(1)
		if b.LeMs >= 0 && b.LeMs < 3 {
			want = 0
		}
		if b.Count != want {
			t.Errorf("collect bucket le=%v count=%d, want %d", b.LeMs, b.Count, want)
		}
	}
}

// --- HTTP surface ----------------------------------------------------------

// testServer builds a server whose analyze function blocks on a gate
// and counts executions, making concurrency scenarios deterministic.
type gate struct {
	entered chan string
	release chan struct{}
	count   atomic.Int64
}

func newGatedServer(t *testing.T, cfg Config) (*Server, *gate) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := &gate{entered: make(chan string, 16), release: make(chan struct{})}
	s.analyze = func(ctx context.Context, spec jobSpec) (*counterminer.Analysis, error) {
		g.count.Add(1)
		g.entered <- spec.benchmark
		select {
		case <-g.release:
		case <-ctx.Done():
			return nil, &counterminer.CancelError{Stage: counterminer.StageCollect, Err: ctx.Err()}
		}
		return &counterminer.Analysis{Benchmark: spec.benchmark, Events: 229}, nil
	}
	return s, g
}

func postAnalyze(t *testing.T, url string, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/analyze", "application/json", bytes.NewBufferString(body))
	if err != nil {
		t.Fatalf("POST /analyze: %v", err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

func TestServerSingleflightConcurrentRequests(t *testing.T) {
	s, g := newGatedServer(t, Config{Workers: 2, QueueDepth: 4, CacheSize: 8})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.queue.Drain()

	body := `{"benchmark":"wordcount","skip_eir":true,"trees":20}`
	type result struct {
		status int
		resp   AnalyzeResponse
	}
	results := make(chan result, 2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, b := postAnalyze(t, ts.URL, body)
			var ar AnalyzeResponse
			if err := json.Unmarshal(b, &ar); err != nil {
				t.Errorf("decode: %v (%s)", err, b)
			}
			results <- result{resp.StatusCode, ar}
		}()
	}
	// One request leads and enters the (gated) analysis; wait until the
	// other has attached to the same in-flight call, then release.
	<-g.entered
	waitFor(t, "singleflight follower", func() bool {
		snap := s.snapshot()
		return snap.Requests.SingleflightShared == 1
	})
	close(g.release)
	wg.Wait()
	close(results)

	shared := 0
	for r := range results {
		if r.status != http.StatusOK {
			t.Fatalf("status = %d", r.status)
		}
		if r.resp.Analysis == nil || r.resp.Analysis.Benchmark != "wordcount" {
			t.Fatalf("bad analysis in %+v", r.resp)
		}
		if r.resp.Shared {
			shared++
		}
	}
	if got := g.count.Load(); got != 1 {
		t.Fatalf("pipeline executions = %d, want 1 (singleflight)", got)
	}
	if shared != 1 {
		t.Errorf("shared responses = %d, want 1", shared)
	}

	// An identical request afterwards is a pure cache hit: still one
	// execution, visible in /metrics.
	resp, b := postAnalyze(t, ts.URL, body)
	var ar AnalyzeResponse
	if err := json.Unmarshal(b, &ar); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || !ar.Cached {
		t.Fatalf("third request: status=%d cached=%v", resp.StatusCode, ar.Cached)
	}
	if got := g.count.Load(); got != 1 {
		t.Fatalf("executions after cache hit = %d, want 1", got)
	}
	snap := s.snapshot()
	if snap.Requests.CacheHits != 1 || snap.Requests.CacheMisses != 1 || snap.Requests.SingleflightShared != 1 {
		t.Errorf("metrics = %+v", snap.Requests)
	}
	if snap.Analyses.Completed != 1 {
		t.Errorf("completed analyses = %d, want 1", snap.Analyses.Completed)
	}
}

func TestServerOverloadTypedRejection(t *testing.T) {
	s, g := newGatedServer(t, Config{Workers: 1, QueueDepth: 1, CacheSize: 8})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.queue.Drain()

	done := make(chan struct{}, 2)
	post := func(bench string) {
		go func() {
			postAnalyze(t, ts.URL, fmt.Sprintf(`{"benchmark":%q}`, bench))
			done <- struct{}{}
		}()
	}
	post("wordcount")
	<-g.entered // the first request occupies the only worker
	post("sort")
	waitFor(t, "second request queued", func() bool { return s.queue.Depth() == 1 })

	// Worker busy + buffer full → typed 429 with a JSON body.
	resp, body := postAnalyze(t, ts.URL, `{"benchmark":"pagerank"}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429 (body %s)", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	var er ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatalf("429 body is not JSON: %v (%s)", err, body)
	}
	if er.Error != "queue_full" || er.RetryAfterSeconds <= 0 {
		t.Errorf("429 body = %+v, want code queue_full with retry hint", er)
	}
	snap := s.snapshot()
	if snap.Requests.RejectedQueueFull != 1 {
		t.Errorf("rejected_queue_full = %d, want 1", snap.Requests.RejectedQueueFull)
	}

	close(g.release)
	<-done
	<-done
}

func TestServerShutdownDrainsInflightAndFlushesStore(t *testing.T) {
	dbPath := filepath.Join(t.TempDir(), "runs.db")
	s, err := New(Config{Workers: 1, QueueDepth: 1, CacheSize: 8, StorePath: dbPath})
	if err != nil {
		t.Fatal(err)
	}
	// Gate the real pipeline so the shutdown provably overlaps an
	// in-flight analysis.
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	real := s.analyze
	s.analyze = func(ctx context.Context, spec jobSpec) (*counterminer.Analysis, error) {
		entered <- struct{}{}
		<-release
		return real(ctx, spec)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve(ctx, ln) }()
	url := "http://" + ln.Addr().String()

	respc := make(chan *http.Response, 1)
	go func() {
		resp, _ := postAnalyze(t, url,
			`{"benchmark":"wordcount","runs":1,"trees":4,"skip_eir":true,"events":["ICACHE.*","L2_RQSTS.*","BR_INST_RETIRED.*"]}`)
		respc <- resp
	}()
	<-entered // the analysis is in flight
	cancel()  // SIGTERM equivalent: drain

	waitFor(t, "health reports draining", func() bool { return s.draining.Load() })
	close(release)

	resp := <-respc
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("in-flight request finished with %d, want 200", resp.StatusCode)
	}
	if err := <-serveDone; err != nil {
		t.Fatalf("Serve returned %v, want nil on clean drain", err)
	}

	// The store was flushed atomically: it reopens healthy and holds
	// the in-flight run.
	db, err := store.Open(dbPath)
	if err != nil {
		t.Fatalf("reopen store: %v", err)
	}
	if db.Skipped() != 0 {
		t.Errorf("reopened store skipped %d records", db.Skipped())
	}
	if db.Len() == 0 {
		t.Error("store is empty; the drained analysis was not persisted")
	}
	sums := db.Benchmarks()
	if len(sums) != 1 || sums[0].Benchmark != "wordcount" || sums[0].Runs != 1 {
		t.Errorf("catalog = %+v", sums)
	}
}

func TestServerValidationAndCatalog(t *testing.T) {
	dbPath := filepath.Join(t.TempDir(), "runs.db")
	seed, err := store.Open(dbPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := seed.Put(store.Record{
		Meta:   store.RunMeta{Benchmark: "wordcount", RunID: 1, Mode: "MLPX"},
		IPC:    []float64{1, 2},
		Series: map[string][]float64{"ICACHE.MISSES": {3, 4}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := seed.Flush(); err != nil {
		t.Fatal(err)
	}

	s, err := New(Config{StorePath: dbPath})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.queue.Drain()

	cases := []struct {
		body   string
		status int
		code   string
	}{
		{`{not json`, http.StatusBadRequest, "bad_request"},
		{`{}`, http.StatusBadRequest, "bad_request"},
		{`{"benchmark":"nope"}`, http.StatusNotFound, "unknown_benchmark"},
		{`{"benchmark":"wordcount","colocate":"nope"}`, http.StatusNotFound, "unknown_benchmark"},
		{`{"benchmark":"wordcount","runs":-1}`, http.StatusBadRequest, "bad_request"},
		{`{"benchmark":"wordcount","runs":2,"min_runs":3}`, http.StatusBadRequest, "bad_request"},
		{`{"benchmark":"wordcount","events":["ICACHE.MISSES"]}`, http.StatusBadRequest, "bad_request"},
		{`{"benchmark":"wordcount","bogus_field":1}`, http.StatusBadRequest, "bad_request"},
	}
	for _, tc := range cases {
		resp, body := postAnalyze(t, ts.URL, tc.body)
		var er ErrorResponse
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status = %d, want %d", tc.body, resp.StatusCode, tc.status)
			continue
		}
		if err := json.Unmarshal(body, &er); err != nil || er.Error != tc.code {
			t.Errorf("%s: body = %s, want code %s", tc.body, body, tc.code)
		}
	}

	// Method discipline.
	resp, err := http.Get(ts.URL + "/analyze")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /analyze = %d, want 405", resp.StatusCode)
	}

	// Health.
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || health["status"] != "ok" {
		t.Errorf("healthz = %d %v", resp.StatusCode, health)
	}

	// Metrics surface: full stage plan pre-registered, JSON-decodable.
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(snap.StageLatency) != len(counterminer.StageNames()) {
		t.Errorf("metrics stage series = %d, want the full plan", len(snap.StageLatency))
	}
	if snap.Queue.Capacity != 8 || snap.Cache.Capacity != 64 {
		t.Errorf("gauges = %+v / %+v, want defaulted capacities", snap.Queue, snap.Cache)
	}

	// Benchmarks catalog: available list plus the store's read side.
	resp, err = http.Get(ts.URL + "/benchmarks")
	if err != nil {
		t.Fatal(err)
	}
	var cat BenchmarksResponse
	if err := json.NewDecoder(resp.Body).Decode(&cat); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(cat.Available) != 16 {
		t.Errorf("available benchmarks = %d, want 16", len(cat.Available))
	}
	if len(cat.Stored) != 1 || cat.Stored[0].Benchmark != "wordcount" ||
		cat.Stored[0].Runs != 1 || cat.Stored[0].Events != 1 {
		t.Errorf("stored catalog = %+v", cat.Stored)
	}
	if cat.Store == nil || cat.Store.Runs != 1 {
		t.Errorf("store stats = %+v", cat.Store)
	}
}

// TestServerEndToEndRealPipeline exercises the production analyze path
// (no gate): one real analysis over a small event subset, served,
// cached, and measured.
func TestServerEndToEndRealPipeline(t *testing.T) {
	s, err := New(Config{Workers: 1, QueueDepth: 2, CacheSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.queue.Drain()

	body := `{"benchmark":"wordcount","runs":1,"trees":4,"skip_eir":true,"top_k":3,"events":["ICACHE.*","L2_RQSTS.*","BR_INST_RETIRED.*"]}`
	resp, b := postAnalyze(t, ts.URL, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, b)
	}
	var ar AnalyzeResponse
	if err := json.Unmarshal(b, &ar); err != nil {
		t.Fatal(err)
	}
	if ar.Cached || ar.Analysis == nil || ar.Analysis.Benchmark != "wordcount" {
		t.Fatalf("first response = %+v", ar)
	}
	if len(ar.Analysis.Importance) == 0 || len(ar.Analysis.Stages) == 0 {
		t.Fatalf("analysis missing ranking or stage timings: %+v", ar.Analysis)
	}

	resp, b = postAnalyze(t, ts.URL, body)
	var ar2 AnalyzeResponse
	if err := json.Unmarshal(b, &ar2); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || !ar2.Cached {
		t.Fatalf("repeat response = %d %+v, want cached", resp.StatusCode, ar2)
	}
	snap := s.snapshot()
	if snap.Analyses.Completed != 1 || snap.Requests.CacheHits != 1 {
		t.Errorf("metrics after repeat = %+v / %+v", snap.Analyses, snap.Requests)
	}
	// The stage histograms were fed from Analysis.Stages.
	for _, sh := range snap.StageLatency {
		if sh.Stage == counterminer.StageRank && sh.Count != 1 {
			t.Errorf("rank histogram count = %d, want 1", sh.Count)
		}
	}
}

// TestMetricsSnapshotStoreShardStats: /metrics carries the store's
// shard accounting when a store is configured, and omits the section
// otherwise.
func TestMetricsSnapshotStoreShardStats(t *testing.T) {
	dbPath := filepath.Join(t.TempDir(), "runs.db")
	seed, err := store.Open(dbPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := seed.Put(store.Record{
		Meta:   store.RunMeta{Benchmark: "wordcount", RunID: 1, Mode: "MLPX"},
		IPC:    []float64{1, 2},
		Series: map[string][]float64{"ICACHE.MISSES": {3, 4}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := seed.Flush(); err != nil {
		t.Fatal(err)
	}

	s, err := New(Config{StorePath: dbPath, StoreMemBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	snap := s.snapshot()
	if snap.Store == nil {
		t.Fatal("snapshot.Store is nil with a store configured")
	}
	// The startup fingerprint-index rebuild walks every stored run, so
	// the shard is already loaded when the server comes up.
	if snap.Store.Shards != 1 || snap.Store.LoadedShards != 1 || snap.Store.ShardLoads != 1 {
		t.Errorf("store gauges = %+v, want 1 shard, loaded once by the index rebuild", snap.Store)
	}
	if snap.Store.MemBudgetBytes != 1<<20 {
		t.Errorf("mem_budget_bytes = %d, want %d (from StoreMemBytes)", snap.Store.MemBudgetBytes, 1<<20)
	}
	// Touching the record hits the already-resident shard: no new load.
	if _, ok := s.db.Get("wordcount", 1, "MLPX"); !ok {
		t.Fatal("seeded record missing")
	}
	snap = s.snapshot()
	if snap.Store.LoadedShards != 1 || snap.Store.ShardLoads != 1 {
		t.Errorf("after Get: %+v, want loaded_shards=1 shard_loads=1", snap.Store)
	}
	// And the rebuild populated the index gauges.
	if snap.Fingerprint.IndexEntries != 1 || snap.Fingerprint.IndexRebuilds != 1 {
		t.Errorf("fingerprint gauges = %+v, want 1 entry from 1 rebuild", snap.Fingerprint)
	}
	if snap.Fingerprint.IndexVersion == "" || snap.Fingerprint.IndexVersion == "empty" {
		t.Errorf("index version = %q, want a content hash", snap.Fingerprint.IndexVersion)
	}

	bare, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if got := bare.snapshot(); got.Store != nil {
		t.Errorf("snapshot.Store = %+v without a store, want nil", got.Store)
	}
}
