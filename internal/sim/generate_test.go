package sim

import (
	"math"
	"testing"
)

func testGenerator(t *testing.T, name string) *Generator {
	t.Helper()
	p, err := ProfileByName(name)
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGenerator(p, NewCatalogue())
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestGenerateDeterministicPerRun(t *testing.T) {
	g := testGenerator(t, "wordcount")
	t1 := g.Generate(1)
	t2 := g.Generate(1)
	if t1.Intervals != t2.Intervals {
		t.Fatalf("same run, different lengths: %d vs %d", t1.Intervals, t2.Intervals)
	}
	s1, _ := t1.Series("ICACHE.MISSES")
	s2, _ := t2.Series("ICACHE.MISSES")
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("same run differs at %d", i)
		}
	}
}

func TestGenerateRunsDiffer(t *testing.T) {
	g := testGenerator(t, "wordcount")
	t1 := g.Generate(1)
	t2 := g.Generate(2)
	s1, _ := t1.Series("RS_EVENTS.IQ_FULL_STALL")
	s2, _ := t2.Series("RS_EVENTS.IQ_FULL_STALL")
	n := len(s1)
	if len(s2) < n {
		n = len(s2)
	}
	same := 0
	for i := 0; i < n; i++ {
		if s1[i] == s2[i] {
			same++
		}
	}
	if same > n/10 {
		t.Errorf("runs 1 and 2 share %d/%d samples", same, n)
	}
}

func TestRunLengthNondeterminism(t *testing.T) {
	// §III-A: run lengths vary across runs of the same program.
	g := testGenerator(t, "pagerank")
	lengths := map[int]bool{}
	for run := 0; run < 10; run++ {
		lengths[g.Generate(run).Intervals] = true
	}
	if len(lengths) < 3 {
		t.Errorf("only %d distinct run lengths in 10 runs", len(lengths))
	}
}

func TestIPCPositiveAndBounded(t *testing.T) {
	for _, name := range []string{"wordcount", "WebServing"} {
		g := testGenerator(t, name)
		tr := g.Generate(0)
		for t0, v := range tr.IPC {
			if v <= 0 {
				t.Fatalf("%s IPC[%d] = %v", name, t0, v)
			}
			if v > g.Profile.BaseIPC*1.2 {
				t.Fatalf("%s IPC[%d] = %v above ceiling", name, t0, v)
			}
		}
		if tr.MeanIPC() <= 0.1 || tr.MeanIPC() >= g.Profile.BaseIPC {
			t.Errorf("%s mean IPC = %v", name, tr.MeanIPC())
		}
	}
}

func TestColdStartEventHasStartupBurst(t *testing.T) {
	g := testGenerator(t, "wordcount")
	tr := g.Generate(3)
	s, err := tr.Series("ICACHE.MISSES")
	if err != nil {
		t.Fatal(err)
	}
	head := 0.0
	for _, v := range s[:len(s)/12] {
		head += v
	}
	head /= float64(len(s) / 12)
	tail := 0.0
	for _, v := range s[len(s)/2:] {
		tail += v
	}
	tail /= float64(len(s) - len(s)/2)
	if head < 1.5*tail {
		t.Errorf("cold-start head %v not ≫ steady tail %v", head, tail)
	}
}

func TestInformativeEventCount(t *testing.T) {
	g := testGenerator(t, "kmeans")
	n := g.InformativeEventCount()
	want := len(g.Profile.Weights) + TailEvents
	if n != want {
		t.Errorf("informative events = %d, want %d", n, want)
	}
	// There must be real noise events left over (finding 4).
	if NumEvents-n < 50 {
		t.Errorf("only %d pure-noise events", NumEvents-n)
	}
}

func TestWeightAccessor(t *testing.T) {
	g := testGenerator(t, "wordcount")
	if g.Weight("RS_EVENTS.IQ_FULL_STALL") != 6.1 {
		t.Errorf("ISF weight = %v, want 6.1", g.Weight("RS_EVENTS.IQ_FULL_STALL"))
	}
	if g.Weight("unknown") != 0 {
		t.Error("unknown event weight != 0")
	}
}

func TestImportantEventsDriveIPC(t *testing.T) {
	// Correlation between the top event's saturation and IPC must be
	// clearly negative (it is a penalty).
	g := testGenerator(t, "wordcount")
	tr := g.Generate(5)
	s, _ := tr.Series("RS_EVENTS.IQ_FULL_STALL")
	var cov, varX, varY float64
	mx, my := 0.0, 0.0
	for i := range s {
		mx += s[i]
		my += tr.IPC[i]
	}
	mx /= float64(len(s))
	my /= float64(len(s))
	for i := range s {
		cov += (s[i] - mx) * (tr.IPC[i] - my)
		varX += (s[i] - mx) * (s[i] - mx)
		varY += (tr.IPC[i] - my) * (tr.IPC[i] - my)
	}
	r := cov / math.Sqrt(varX*varY)
	if r > -0.1 {
		t.Errorf("ISF-IPC correlation = %v, want clearly negative", r)
	}
}

func TestTraceAccessors(t *testing.T) {
	g := testGenerator(t, "scan")
	tr := g.Generate(0)
	if _, err := tr.Value("nope", 0); err == nil {
		t.Error("unknown event Value should error")
	}
	if _, err := tr.Value("ICACHE.MISSES", -1); err == nil {
		t.Error("negative interval should error")
	}
	if _, err := tr.Value("ICACHE.MISSES", tr.Intervals); err == nil {
		t.Error("out-of-range interval should error")
	}
	v, err := tr.Value("ICACHE.MISSES", 0)
	if err != nil || v < 0 {
		t.Errorf("Value = %v, %v", v, err)
	}
	if _, err := tr.Series("nope"); err == nil {
		t.Error("unknown event Series should error")
	}
	if tr.Catalogue() == nil {
		t.Error("Catalogue() nil")
	}
	s := tr.SeriesByIndex(0)
	if len(s) != tr.Intervals {
		t.Errorf("SeriesByIndex length = %d", len(s))
	}
}

func TestNewGeneratorRejectsInvalidProfile(t *testing.T) {
	_, err := NewGenerator(Profile{Name: "bad"}, NewCatalogue())
	if err == nil {
		t.Error("invalid profile should error")
	}
}

func TestColocateHomogeneousKeepsStructure(t *testing.T) {
	dc, _ := ProfileByName("DataCaching")
	co := Colocate(dc, dc)
	if co.Weights[0].Abbrev != dc.Weights[0].Abbrev {
		t.Errorf("homogeneous co-location changed top event: %s", co.Weights[0].Abbrev)
	}
	// Top-10 should be only slightly different: at least 7 shared.
	top := map[string]bool{}
	for _, w := range co.Weights[:10] {
		top[w.Abbrev] = true
	}
	shared := 0
	for _, w := range dc.Weights {
		if top[w.Abbrev] {
			shared++
		}
	}
	if shared < 7 {
		t.Errorf("homogeneous co-location shares only %d/10 top events", shared)
	}
	if err := co.Validate(NewCatalogue()); err != nil {
		t.Errorf("co-located profile invalid: %v", err)
	}
}

func TestColocateHeterogeneousSurfacesL2(t *testing.T) {
	dc, _ := ProfileByName("DataCaching")
	ga, _ := ProfileByName("GraphAnalytics")
	co := Colocate(dc, ga)
	l2 := 0
	for _, w := range co.Weights[:10] {
		if len(w.Abbrev) == 3 && w.Abbrev[:2] == "L2" {
			l2++
		}
	}
	if l2 < 4 {
		t.Errorf("heterogeneous co-location has %d L2 events in top 10, want >= 4", l2)
	}
	// Neither original profile has L2 events in its top list.
	for _, p := range []Profile{dc, ga} {
		for _, w := range p.Weights {
			if w.Abbrev[:2] == "L2" {
				t.Errorf("%s already has L2 event %s", p.Name, w.Abbrev)
			}
		}
	}
	if err := co.Validate(NewCatalogue()); err != nil {
		t.Errorf("co-located profile invalid: %v", err)
	}
	// Generation works on co-located profiles.
	g, err := NewGenerator(co, NewCatalogue())
	if err != nil {
		t.Fatal(err)
	}
	tr := g.Generate(0)
	if tr.MeanIPC() <= 0 {
		t.Error("co-located trace has non-positive IPC")
	}
}

func TestPMUOCOE(t *testing.T) {
	g := testGenerator(t, "join")
	tr := g.Generate(0)
	pmu := DefaultPMU()
	if pmu.Fixed != 3 || pmu.Programmable != 4 {
		t.Fatalf("default PMU = %+v", pmu)
	}
	obs, err := pmu.MeasureOCOE(tr, []string{"ICACHE.MISSES", "IDQ.DSB_UOPS"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	truth, _ := tr.Series("ICACHE.MISSES")
	got := obs["ICACHE.MISSES"]
	if len(got) != len(truth) {
		t.Fatalf("observed length %d != %d", len(got), len(truth))
	}
	// Relative error should be small but nonzero.
	sumRel, diff := 0.0, 0
	for i := range truth {
		if truth[i] > 0 {
			sumRel += math.Abs(got[i]-truth[i]) / truth[i]
		}
		if got[i] != truth[i] {
			diff++
		}
	}
	if avg := sumRel / float64(len(truth)); avg > 0.1 {
		t.Errorf("OCOE relative error = %v, want < 0.1", avg)
	}
	if diff == 0 {
		t.Error("OCOE observation identical to truth (no measurement noise)")
	}
	// Capacity limit.
	if _, err := pmu.MeasureOCOE(tr, []string{"A", "B", "C", "D", "E"}, 1); err == nil {
		t.Error("OCOE beyond counter capacity should error")
	}
	if _, err := pmu.MeasureOCOE(tr, nil, 1); err == nil {
		t.Error("OCOE with no events should error")
	}
	if _, err := pmu.MeasureOCOE(tr, []string{"NOPE"}, 1); err == nil {
		t.Error("OCOE with unknown event should error")
	}
}

func TestPMUGroups(t *testing.T) {
	pmu := DefaultPMU()
	cases := []struct{ n, want int }{{0, 0}, {1, 1}, {4, 1}, {5, 2}, {10, 3}, {16, 4}, {229, 58}}
	for _, c := range cases {
		if got := pmu.Groups(c.n); got != c.want {
			t.Errorf("Groups(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestPMUMeasureIPC(t *testing.T) {
	g := testGenerator(t, "bayes")
	tr := g.Generate(0)
	ipc := DefaultPMU().MeasureIPC(tr, 9)
	if len(ipc) != tr.Intervals {
		t.Fatalf("IPC length = %d", len(ipc))
	}
	for i, v := range ipc {
		if v <= 0 {
			t.Fatalf("measured IPC[%d] = %v", i, v)
		}
	}
}
