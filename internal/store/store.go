// Package store is CounterMiner's performance-data store. The paper
// keeps collected counter time series in SQLite with a two-level table
// organisation (§III-A): first-level tables hold run metadata (program
// name, measured events, execution times, and the names of the
// second-level tables); second-level tables hold the per-event time
// series of each run. This package reproduces that organisation as an
// embedded, file-backed store on the standard library.
//
// The store is safe for concurrent use. Mutations are in-memory until
// Flush, which writes atomically (temp file + rename).
package store

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"counterminer/internal/timeseries"
)

// RunMeta is a first-level table row: everything about a run except the
// series data.
type RunMeta struct {
	// Benchmark is the program name.
	Benchmark string
	// RunID identifies the execution.
	RunID int
	// Mode is the sampling mode ("OCOE" or "MLPX").
	Mode string
	// Events lists the measured event names.
	Events []string
	// Intervals is the run length (the "execution time" column of the
	// paper's first-level table).
	Intervals int
	// SeriesTable names the second-level table holding this run's
	// series.
	SeriesTable string
}

// Record is a full run: metadata plus series.
type Record struct {
	Meta RunMeta
	// IPC is the fixed-counter IPC series.
	IPC []float64
	// Series maps event name to its sampled values.
	Series map[string][]float64
}

// DB is the two-level store.
type DB struct {
	mu   sync.RWMutex
	path string
	// firstLevel indexes runs by key.
	firstLevel map[string]RunMeta
	// secondLevel maps a series-table name to its per-event series
	// (IPC stored under the reserved name "__ipc__").
	secondLevel map[string]map[string][]float64
	// skipped counts records dropped while opening a damaged file.
	skipped int
	dirty   bool
}

const ipcColumn = "__ipc__"

// persisted is the on-disk header. Version 1 stored the whole database
// in this one gob value; version 2 stores only the header here,
// followed by a stream of independent diskRecord values, so a corrupt
// or truncated tail loses individual records instead of the whole file.
type persisted struct {
	Version     int
	FirstLevel  map[string]RunMeta
	SecondLevel map[string]map[string][]float64
}

// diskRecord is one version-2 on-disk record. Series is a slice sorted
// by event name rather than a map so that encoding is deterministic:
// flushing the same contents always produces byte-identical files.
type diskRecord struct {
	Key    string
	Meta   RunMeta
	Series []diskSeries
}

// diskSeries is one event column of a version-2 record.
type diskSeries struct {
	Event  string
	Values []float64
}

const formatVersion = 2

// Open opens (or creates) a store at path. An empty path creates a
// purely in-memory store that cannot be flushed.
//
// Open is resilient to damaged files: records that are corrupt,
// truncated, or internally inconsistent are skipped (and counted in
// Skipped / Stats.SkippedRecords) rather than failing the whole open.
// Only an unreadable header — a file that is not a store at all —
// returns an error.
func Open(path string) (*DB, error) {
	db := &DB{
		path:        path,
		firstLevel:  make(map[string]RunMeta),
		secondLevel: make(map[string]map[string][]float64),
	}
	if path == "" {
		return db, nil
	}
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return db, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: open: %w", err)
	}
	defer f.Close()
	dec := gob.NewDecoder(f)
	var img persisted
	if err := dec.Decode(&img); err != nil {
		return nil, fmt.Errorf("store: decode %s: %w", path, err)
	}
	switch img.Version {
	case 1:
		db.loadLegacy(img)
	case formatVersion:
		db.loadStream(dec)
	default:
		return nil, fmt.Errorf("store: %s has format version %d, want <= %d", path, img.Version, formatVersion)
	}
	return db, nil
}

// loadLegacy imports a version-1 single-blob image, skipping records
// whose two levels are inconsistent.
func (db *DB) loadLegacy(img persisted) {
	for k, meta := range img.FirstLevel {
		series, ok := img.SecondLevel[meta.SeriesTable]
		if !ok || !validMeta(meta) {
			db.skipped++
			continue
		}
		db.firstLevel[k] = meta
		db.secondLevel[meta.SeriesTable] = series
	}
}

// loadStream imports version-2 records until the stream ends. A decode
// error (corruption or truncation) ends the load — a gob stream cannot
// be resynchronised — with everything already read retained and the
// broken tail counted as skipped.
func (db *DB) loadStream(dec *gob.Decoder) {
	for {
		var dr diskRecord
		if err := dec.Decode(&dr); err != nil {
			if !errors.Is(err, io.EOF) {
				db.skipped++
			}
			return
		}
		if dr.Key == "" || len(dr.Series) == 0 || !validMeta(dr.Meta) ||
			dr.Key != key(dr.Meta.Benchmark, dr.Meta.RunID, dr.Meta.Mode) {
			db.skipped++
			continue
		}
		table := make(map[string][]float64, len(dr.Series))
		for _, ds := range dr.Series {
			table[ds.Event] = ds.Values
		}
		db.firstLevel[dr.Key] = dr.Meta
		db.secondLevel[dr.Meta.SeriesTable] = table
	}
}

// validMeta checks the invariants every stored record satisfies.
func validMeta(m RunMeta) bool {
	return m.Benchmark != "" && m.Mode != "" && m.SeriesTable != ""
}

// Skipped reports how many records were dropped while opening a
// damaged file (0 for a healthy one).
func (db *DB) Skipped() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.skipped
}

// key builds the first-level primary key.
func key(benchmark string, runID int, mode string) string {
	return fmt.Sprintf("%s/%d/%s", benchmark, runID, mode)
}

// Put stores a record, replacing any previous record of the same
// (benchmark, run, mode).
func (db *DB) Put(rec Record) error {
	if rec.Meta.Benchmark == "" {
		return errors.New("store: record without benchmark name")
	}
	if rec.Meta.Mode == "" {
		return errors.New("store: record without mode")
	}
	k := key(rec.Meta.Benchmark, rec.Meta.RunID, rec.Meta.Mode)
	table := "series/" + k

	meta := rec.Meta
	meta.SeriesTable = table
	// The series map is the source of truth for the event list.
	meta.Events = meta.Events[:0:0]
	for ev := range rec.Series {
		meta.Events = append(meta.Events, ev)
	}
	sort.Strings(meta.Events)
	if meta.Intervals == 0 {
		meta.Intervals = len(rec.IPC)
	}

	series := make(map[string][]float64, len(rec.Series)+1)
	for ev, vals := range rec.Series {
		series[ev] = append([]float64(nil), vals...)
	}
	if rec.IPC != nil {
		series[ipcColumn] = append([]float64(nil), rec.IPC...)
	}

	db.mu.Lock()
	defer db.mu.Unlock()
	db.firstLevel[k] = meta
	db.secondLevel[table] = series
	db.dirty = true
	return nil
}

// Get retrieves a record by key.
func (db *DB) Get(benchmark string, runID int, mode string) (Record, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	meta, ok := db.firstLevel[key(benchmark, runID, mode)]
	if !ok {
		return Record{}, false
	}
	table := db.secondLevel[meta.SeriesTable]
	rec := Record{Meta: meta, Series: make(map[string][]float64, len(table))}
	for ev, vals := range table {
		cp := append([]float64(nil), vals...)
		if ev == ipcColumn {
			rec.IPC = cp
		} else {
			rec.Series[ev] = cp
		}
	}
	return rec, true
}

// Delete removes a record; it reports whether the record existed.
func (db *DB) Delete(benchmark string, runID int, mode string) bool {
	db.mu.Lock()
	defer db.mu.Unlock()
	k := key(benchmark, runID, mode)
	meta, ok := db.firstLevel[k]
	if !ok {
		return false
	}
	delete(db.firstLevel, k)
	delete(db.secondLevel, meta.SeriesTable)
	db.dirty = true
	return true
}

// List returns the first-level rows, sorted by benchmark, run, mode.
func (db *DB) List() []RunMeta {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]RunMeta, 0, len(db.firstLevel))
	for _, m := range db.firstLevel {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Benchmark != out[j].Benchmark {
			return out[i].Benchmark < out[j].Benchmark
		}
		if out[i].RunID != out[j].RunID {
			return out[i].RunID < out[j].RunID
		}
		return out[i].Mode < out[j].Mode
	})
	return out
}

// ListBenchmark returns the first-level rows of one benchmark.
func (db *DB) ListBenchmark(benchmark string) []RunMeta {
	var out []RunMeta
	for _, m := range db.List() {
		if m.Benchmark == benchmark {
			out = append(out, m)
		}
	}
	return out
}

// Len reports the number of stored runs.
func (db *DB) Len() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.firstLevel)
}

// SeriesSet returns a record's series as a timeseries.Set.
func (db *DB) SeriesSet(benchmark string, runID int, mode string) (*timeseries.Set, error) {
	rec, ok := db.Get(benchmark, runID, mode)
	if !ok {
		return nil, fmt.Errorf("store: no record %s/%d/%s", benchmark, runID, mode)
	}
	set := timeseries.NewSet()
	for ev, vals := range rec.Series {
		set.Put(timeseries.New(ev, vals))
	}
	return set, nil
}

// Flush writes the store to disk atomically. It is a no-op when nothing
// changed since the last flush, and an error for in-memory stores.
func (db *DB) Flush() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.path == "" {
		return errors.New("store: in-memory store cannot be flushed")
	}
	if !db.dirty {
		return nil
	}
	dir := filepath.Dir(db.path)
	tmp, err := os.CreateTemp(dir, ".cmdb-*")
	if err != nil {
		return fmt.Errorf("store: flush: %w", err)
	}
	tmpName := tmp.Name()
	if err := db.encodeTo(tmp); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("store: encode: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: close: %w", err)
	}
	if err := os.Rename(tmpName, db.path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: rename: %w", err)
	}
	db.dirty = false
	return nil
}

// encodeTo writes the version-2 image: a header, then one gob value per
// record in key order (deterministic files, independently decodable
// records).
func (db *DB) encodeTo(w io.Writer) error {
	enc := gob.NewEncoder(w)
	if err := enc.Encode(&persisted{Version: formatVersion}); err != nil {
		return err
	}
	keys := make([]string, 0, len(db.firstLevel))
	for k := range db.firstLevel {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		meta := db.firstLevel[k]
		table := db.secondLevel[meta.SeriesTable]
		events := make([]string, 0, len(table))
		for ev := range table {
			events = append(events, ev)
		}
		sort.Strings(events)
		series := make([]diskSeries, len(events))
		for i, ev := range events {
			series[i] = diskSeries{Event: ev, Values: table[ev]}
		}
		if err := enc.Encode(&diskRecord{Key: k, Meta: meta, Series: series}); err != nil {
			return err
		}
	}
	return nil
}
