// Package cluster turns counterminerd into a coordinator/worker
// fleet. One daemon caps out at one machine's cores; the fleet splits
// the service into two roles that keep the single-node endpoint
// contract intact:
//
//   - the coordinator owns the front of the house — admission control,
//     the content-addressed result cache, and the batch planner all
//     stay in internal/serve — and replaces local pipeline execution
//     with dispatch: jobs are routed to workers by consistent hashing
//     over the scheduler's benchmark-identity grouping key, so
//     collector memo reuse survives distribution;
//   - workers run the pipeline. They register with the coordinator and
//     keep a heartbeat lease alive; when a lease expires (worker death
//     or partition), the coordinator requeues that worker's in-flight
//     jobs onto the ring's next node. Retries are idempotent because
//     jobs are content-addressed: a worker that comes back from a
//     partition and answers late is deduplicated, never double-counted,
//     and the run store keys records by (benchmark, runID, mode), so a
//     re-executed job replaces rather than duplicates.
//
// Coordinator failover is lease-based leader election (Elector): a
// follower/candidate/leader state machine over a LeaseStore, with a
// term that increments on every acquisition. Writes are term-fenced —
// every exec RPC carries the coordinator's term and workers reject
// terms below the highest they have seen, so a deposed coordinator
// that comes back from a partition cannot dispatch stale work.
//
// The determinism contract is the point of all this machinery: the
// same jobs produce bit-identical Analyses (Stages/ElapsedMs scrubbed)
// on any topology under any chaos seed, only slower. internal/fault's
// NodeChaos injects the cluster-plane failures (killed workers,
// delayed or dropped heartbeats, dropped RPCs) that the soak test uses
// to prove it.
package cluster

import (
	"context"
	"errors"
	"fmt"

	counterminer "counterminer"
	"counterminer/internal/serve"
	"counterminer/pkg/client"
)

// NodeID identifies one node (coordinator or worker) in the fleet.
type NodeID string

// RegisterRequest is POST /cluster/register: a worker announcing
// itself to a coordinator.
type RegisterRequest struct {
	// ID is the worker's identity; Addr its base URL as the
	// coordinator should reach it.
	ID   NodeID `json:"id"`
	Addr string `json:"addr"`
}

// RegisterResponse is the coordinator's answer.
type RegisterResponse struct {
	// Accepted reports the worker is registered and on the ring.
	Accepted bool `json:"accepted"`
	// NotLeader explains a refusal: this coordinator does not hold the
	// leader lease; try the next join address.
	NotLeader bool `json:"not_leader,omitempty"`
	// Term is the coordinator's current coordination term.
	Term uint64 `json:"term"`
	// LeaseMs is the worker's lease in milliseconds: miss heartbeats
	// for this long and the coordinator declares the worker dead.
	LeaseMs int64 `json:"lease_ms,omitempty"`
}

// HeartbeatRequest is POST /cluster/heartbeat: a worker renewing its
// lease.
type HeartbeatRequest struct {
	ID NodeID `json:"id"`
	// Seq is the worker's heartbeat sequence number (observability and
	// chaos keying).
	Seq uint64 `json:"seq"`
}

// HeartbeatResponse is the coordinator's answer.
type HeartbeatResponse struct {
	// OK false means the coordinator does not know this worker (it
	// expired, or the coordinator is new after a failover): re-register.
	OK        bool   `json:"ok"`
	NotLeader bool   `json:"not_leader,omitempty"`
	Term      uint64 `json:"term"`
}

// ExecRequest is POST /cluster/exec: the coordinator dispatching one
// content-addressed job to a worker.
type ExecRequest struct {
	Job serve.Job `json:"job"`
	// Term fences the write: workers reject terms below the highest
	// they have observed, so a deposed coordinator cannot dispatch.
	Term uint64 `json:"term"`
	// Attempt counts re-dispatches of this job (0 = first).
	Attempt int `json:"attempt"`
	// Coordinator identifies the dispatching node.
	Coordinator NodeID `json:"coordinator"`
}

// ExecResponse is the worker's answer: exactly one of Analysis and
// Error is set. Error carries terminal analysis outcomes (quorum not
// met, canceled, …) in the same vocabulary as the public API;
// node-level refusals (killed worker, stale term, worker overload)
// travel as non-200 statuses instead, because they mean "try another
// node", not "this job failed".
type ExecResponse struct {
	Analysis *counterminer.Analysis `json:"analysis,omitempty"`
	Error    *client.ErrorResponse  `json:"error,omitempty"`
	// Worker identifies the executing node.
	Worker NodeID `json:"worker"`
}

// errorFromWire reconstructs a typed error from a worker's terminal
// ExecResponse.Error so error identity survives the network hop: the
// coordinator's serve layer maps the reconstructed error back to
// exactly the status and code the worker observed.
func errorFromWire(er *client.ErrorResponse) error {
	sentinel := map[string]error{
		"queue_full":      serve.ErrQueueFull,
		"draining":        serve.ErrDraining,
		"not_leader":      serve.ErrNotLeader,
		"no_workers":      serve.ErrNoWorkers,
		"budget_exceeded": context.DeadlineExceeded,
		"canceled":        counterminer.ErrCanceled,
		"quorum_not_met":  counterminer.ErrQuorum,
		"series_invalid":  counterminer.ErrSeriesInvalid,
	}[er.Error]
	if sentinel == nil {
		return fmt.Errorf("cluster: worker error: %s", er.Message)
	}
	return fmt.Errorf("%s: %w", er.Message, sentinel)
}

// wireError encodes a worker-side terminal error for the exec
// envelope using the serve layer's canonical mapping.
func wireError(err error) *client.ErrorResponse {
	_, code := serve.ErrorStatus(err)
	return &client.ErrorResponse{Error: code, Message: err.Error()}
}

// retryableWorkerError reports whether a terminal-looking worker error
// should instead be retried on another node: a worker whose own
// admission queue is full or draining has rejected the job without
// running it, so the coordinator spills to the ring's next worker
// rather than bouncing the overload to the client.
func retryableWorkerError(er *client.ErrorResponse) bool {
	return er != nil && (er.Error == "queue_full" || er.Error == "draining")
}

// ErrKilled is what a chaos-killed worker answers every exec with —
// the in-process stand-in for a dead TCP connection.
var ErrKilled = errors.New("cluster: worker killed")
