package main

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"counterminer/internal/collector"
	"counterminer/internal/serve"
	"counterminer/internal/sim"
	"counterminer/internal/store"
	"counterminer/pkg/client"
)

// seedStore collects n MLPX runs per benchmark over the full
// catalogue and persists them at a fresh store path.
func seedStore(t *testing.T, benches []string, n int) string {
	t.Helper()
	dbPath := filepath.Join(t.TempDir(), "runs.db")
	db, err := store.Open(dbPath)
	if err != nil {
		t.Fatal(err)
	}
	coll := collector.New(sim.NewCatalogue())
	for _, bench := range benches {
		p, err := sim.ProfileByName(bench)
		if err != nil {
			t.Fatal(err)
		}
		for runID := 1; runID <= n; runID++ {
			run, err := coll.Collect(p, runID, collector.MLPX, coll.Catalogue().Events())
			if err != nil {
				t.Fatal(err)
			}
			series := make(map[string][]float64)
			for _, ev := range run.Series.Events() {
				series[ev] = run.Series.MustGet(ev).Values
			}
			if err := db.Put(store.Record{
				Meta: store.RunMeta{
					Benchmark: bench, RunID: runID, Mode: run.Mode.String(),
					Events: run.Series.Events(), Intervals: len(run.IPC),
				},
				IPC:    run.IPC,
				Series: series,
			}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	return dbPath
}

func TestCmclassifyFlagValidation(t *testing.T) {
	cases := [][]string{
		{},
		{"-addr", "http://x", "-db", "runs.db", "-benchmark", "wordcount"},
		{"-db", "runs.db"},
		{"-db", "runs.db", "-benchmark", "wordcount", "-csv", "run.csv"},
		{"-db", "runs.db", "-csv", "run.csv", "-colocate", "sort"},
		{"-db", "runs.db", "-benchmark", "wordcount", "-runs", "0"},
		{"-db", "runs.db", "-benchmark", "wordcount", "-top", "-1"},
		{"-no-such-flag"},
	}
	for _, args := range cases {
		var out, errOut bytes.Buffer
		if code := run(args, &out, &errOut); code != 2 {
			t.Errorf("run(%v) = %d, want 2 (stderr %q)", args, code, errOut.String())
		}
	}
}

func TestCmclassifyOffline(t *testing.T) {
	dbPath := seedStore(t, []string{"wordcount", "sort", "DataCaching"}, 2)

	var out, errOut bytes.Buffer
	if code := run([]string{"-db", dbPath, "-benchmark", "wordcount"}, &out, &errOut); code != 0 {
		t.Fatalf("run = %d, stderr %q", code, errOut.String())
	}
	text := out.String()
	for _, want := range []string{"6 entries", "wordcount", "HiBench", "verdict: match"} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}

	// The same classification as machine-readable JSON.
	out.Reset()
	if code := run([]string{"-db", dbPath, "-benchmark", "wordcount", "-json"}, &out, &errOut); code != 0 {
		t.Fatalf("run -json = %d, stderr %q", code, errOut.String())
	}
	var cls client.Classification
	if err := json.Unmarshal(out.Bytes(), &cls); err != nil {
		t.Fatalf("decode -json output: %v", err)
	}
	if len(cls.Matches) == 0 || cls.Matches[0].Benchmark != "wordcount" {
		t.Errorf("nearest = %+v, want wordcount first", cls.Matches)
	}
	if cls.Confidence < 0.9 || cls.Anomaly {
		t.Errorf("confidence/anomaly = %v/%v, want >= 0.9 and false", cls.Confidence, cls.Anomaly)
	}

	// A saturated, drifted profile is flagged anomalous.
	out.Reset()
	if code := run([]string{"-db", dbPath, "-benchmark", "sort", "-saturate"}, &out, &errOut); code != 0 {
		t.Fatalf("run -saturate = %d, stderr %q", code, errOut.String())
	}
	if !strings.Contains(out.String(), "ANOMALY") {
		t.Errorf("saturated profile not flagged:\n%s", out.String())
	}
}

func TestCmclassifyCSV(t *testing.T) {
	dbPath := seedStore(t, []string{"wordcount", "sort"}, 2)
	db, err := store.Open(dbPath)
	if err != nil {
		t.Fatal(err)
	}
	csvPath := filepath.Join(t.TempDir(), "run.csv")
	f, err := os.Create(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.ExportCSV(f, "sort", 1, "MLPX"); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	var out, errOut bytes.Buffer
	if code := run([]string{"-db", dbPath, "-csv", csvPath}, &out, &errOut); code != 0 {
		t.Fatalf("run = %d, stderr %q", code, errOut.String())
	}
	text := out.String()
	if !strings.Contains(text, "sort") || !strings.Contains(text, "verdict: match") {
		t.Errorf("exported run did not classify back to sort:\n%s", text)
	}
}

func TestCmclassifyRemote(t *testing.T) {
	dbPath := seedStore(t, []string{"wordcount", "kmeans"}, 2)
	s, err := serve.New(serve.Config{Workers: 1, QueueDepth: 4, CacheSize: 8, StorePath: dbPath})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var out, errOut bytes.Buffer
	if code := run([]string{"-addr", ts.URL, "-benchmark", "kmeans", "-top", "2"}, &out, &errOut); code != 0 {
		t.Fatalf("run = %d, stderr %q", code, errOut.String())
	}
	text := out.String()
	for _, want := range []string{"kmeans", "verdict: match", "4 entries"} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}

	// Errors surface as exit 1 with the server's typed code.
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-addr", ts.URL, "-benchmark", "nope"}, &out, &errOut); code != 1 {
		t.Fatalf("unknown benchmark: run = %d, want 1", code)
	}
	if !strings.Contains(errOut.String(), "unknown_benchmark") {
		t.Errorf("stderr %q missing unknown_benchmark", errOut.String())
	}
}
