package fingerprint

import (
	"fmt"
	"math"
	"testing"

	"counterminer/internal/collector"
	"counterminer/internal/sim"
	"counterminer/internal/timeseries"
)

// collectEmbed collects one MLPX run of the named benchmark over the
// full catalogue and embeds it.
func collectEmbed(t testing.TB, coll *collector.Collector, bench string, runID int) ([]float64, sim.Profile) {
	t.Helper()
	p, err := sim.ProfileByName(bench)
	if err != nil {
		t.Fatalf("profile %s: %v", bench, err)
	}
	run, err := coll.Collect(p, runID, collector.MLPX, coll.Catalogue().Events())
	if err != nil {
		t.Fatalf("collect %s: %v", bench, err)
	}
	return Embed(run.Series, run.IPC), p
}

func newColl() *collector.Collector {
	return collector.New(sim.NewCatalogue())
}

func TestFingerprintEmbedDeterministic(t *testing.T) {
	coll := newColl()
	a, _ := collectEmbed(t, coll, "wordcount", 1)
	b, _ := collectEmbed(t, coll, "wordcount", 1)
	if len(a) != Dim || len(b) != Dim {
		t.Fatalf("embedding width %d/%d, want %d", len(a), len(b), Dim)
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			t.Fatalf("embedding not bit-identical at %d: %x vs %x", i, math.Float64bits(a[i]), math.Float64bits(b[i]))
		}
	}
	norm := 0.0
	for _, v := range a {
		norm += v * v
	}
	if math.Abs(norm-1) > 1e-9 {
		t.Fatalf("embedding norm %v, want 1", norm)
	}
}

func TestFingerprintEmbedRobustToGarbage(t *testing.T) {
	coll := newColl()
	p, _ := sim.ProfileByName("pagerank")
	run, err := coll.Collect(p, 1, collector.MLPX, coll.Catalogue().Events())
	if err != nil {
		t.Fatal(err)
	}
	clean := Embed(run.Series, run.IPC)

	// Poison ~2% of samples of every series with NaN/Inf; the robust
	// features must barely move.
	dirty := run.Series.Clone()
	for _, ev := range dirty.Events() {
		s := dirty.MustGet(ev)
		for i := 0; i < s.Len(); i += 50 {
			s.Values[i] = math.NaN()
		}
		if s.Len() > 25 {
			s.Values[25] = math.Inf(1)
		}
	}
	poisoned := Embed(dirty, run.IPC)
	if d := Distance(clean, poisoned); d > 0.08 {
		t.Fatalf("garbage moved embedding by %v, want <= 0.08", d)
	}
}

func TestFingerprintEmbedEmptySet(t *testing.T) {
	vec := Embed(timeseries.NewSet(), nil)
	if len(vec) != Dim {
		t.Fatalf("width %d", len(vec))
	}
	for _, v := range vec {
		if v != 0 {
			t.Fatalf("empty set should embed to zero vector, got %v", vec)
		}
	}
	if Embed(nil, nil)[0] != 0 {
		t.Fatal("nil set should embed to zero vector")
	}
}

// saturate clips every series above frac of its max, mimicking the
// fault injector's corruptSaturate (a saturating counter register) —
// the synthetic "drifted workload" of the anomaly acceptance test.
func saturate(set *timeseries.Set, frac float64) *timeseries.Set {
	out := set.Clone()
	for _, ev := range out.Events() {
		s := out.MustGet(ev)
		max := math.Inf(-1)
		for _, v := range s.Values {
			if v > max {
				max = v
			}
		}
		cap := max * frac
		for i, v := range s.Values {
			if v > cap {
				s.Values[i] = cap
			}
		}
	}
	return out
}

// TestIndexSeparationCalibration is the calibration experiment behind
// DefaultTau/DefaultFloor: across the sixteen simulated benchmarks,
// same-benchmark runs must embed within DefaultTau of each other
// while distinct benchmarks stay beyond it, the resulting clustering
// must be pure (every cluster single-label), held-out runs must
// classify to their own benchmark with confidence >= 0.9, and a
// saturated (drifted) profile must be flagged anomalous.
func TestIndexSeparationCalibration(t *testing.T) {
	coll := newColl()
	benches := sim.AllBenchmarkNames()
	vecs := map[string][][]float64{}
	suites := map[string]string{}
	for _, b := range benches {
		for run := 1; run <= 3; run++ {
			v, p := collectEmbed(t, coll, b, run)
			vecs[b] = append(vecs[b], v)
			suites[b] = p.Suite.String()
		}
	}

	maxIntra, minInter := 0.0, math.Inf(1)
	var maxIntraAt, minInterAt string
	for _, b := range benches {
		for i := 0; i < len(vecs[b]); i++ {
			for j := i + 1; j < len(vecs[b]); j++ {
				if d := Distance(vecs[b][i], vecs[b][j]); d > maxIntra {
					maxIntra, maxIntraAt = d, b
				}
			}
		}
	}
	for i, a := range benches {
		for _, b := range benches[i+1:] {
			for _, va := range vecs[a] {
				for _, vb := range vecs[b] {
					if d := Distance(va, vb); d < minInter {
						minInter, minInterAt = d, a+"/"+b
					}
				}
			}
		}
	}
	t.Logf("max intra-benchmark distance %.4f (%s), min inter-benchmark distance %.4f (%s)",
		maxIntra, maxIntraAt, minInter, minInterAt)
	if maxIntra >= DefaultTau {
		t.Errorf("max intra distance %.4f >= tau %.2f: same-benchmark runs would split", maxIntra, DefaultTau)
	}
	if minInter <= DefaultTau {
		t.Errorf("min inter distance %.4f <= tau %.2f: distinct benchmarks would merge", minInter, DefaultTau)
	}

	ix := NewIndex(Options{})
	var entries []Entry
	for _, b := range benches {
		for run, v := range vecs[b] {
			entries = append(entries, Entry{
				Key:   fmt.Sprintf("%s/%d/MLPX", b, run+1),
				Label: b,
				Suite: suites[b],
				Vec:   v,
			})
		}
	}
	ix.Fill(entries)
	t.Logf("index: %d entries, %d clusters, version %s", ix.Len(), ix.NumClusters(), ix.Version())
	if ix.NumClusters() != len(benches) {
		t.Errorf("got %d clusters for %d benchmarks", ix.NumClusters(), len(benches))
	}
	for _, c := range ix.Clusters() {
		if c.Members != 3 {
			t.Errorf("cluster %s has %d members, want 3 (impure or split)", c.Label, c.Members)
		}
	}

	// Held-out runs (not in the index) must classify to their own
	// benchmark with high confidence and correct suite.
	for _, b := range benches {
		v, p := collectEmbed(t, coll, b, 7)
		res, err := ix.Classify(v, 3)
		if err != nil {
			t.Fatalf("classify %s: %v", b, err)
		}
		if res.Matches[0].Label != b {
			t.Errorf("%s classified as %s (d=%.4f)", b, res.Matches[0].Label, res.Matches[0].Distance)
			continue
		}
		if res.Confidence < 0.9 {
			t.Errorf("%s confidence %.4f < 0.9", b, res.Confidence)
		}
		if res.Anomaly {
			t.Errorf("%s flagged anomalous (score %.3f)", b, res.AnomalyScore)
		}
		if len(res.Suites) == 0 || res.Suites[0].Suite != p.Suite.String() {
			t.Errorf("%s suite confidence ranks %v, want %s first", b, res.Suites, p.Suite)
		}
	}

	// A saturated (drifted) profile of a known benchmark must be
	// flagged anomalous.
	p, _ := sim.ProfileByName("kmeans")
	run, err := coll.Collect(p, 9, collector.MLPX, coll.Catalogue().Events())
	if err != nil {
		t.Fatal(err)
	}
	drifted := Embed(saturate(run.Series, 0.25), run.IPC)
	res, err := ix.Classify(drifted, 3)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("drifted kmeans: nearest %s d=%.4f anomalyScore=%.3f", res.Matches[0].Label, res.Matches[0].Distance, res.AnomalyScore)
	if !res.Anomaly {
		t.Errorf("saturated profile not flagged anomalous (score %.3f)", res.AnomalyScore)
	}
}

func TestIndexInsertionOrderInvariant(t *testing.T) {
	coll := newColl()
	benches := []string{"wordcount", "sort", "DataCaching", "WebSearch", "join"}
	var entries []Entry
	for _, b := range benches {
		for run := 1; run <= 2; run++ {
			v, p := collectEmbed(t, coll, b, run)
			entries = append(entries, Entry{
				Key:   fmt.Sprintf("%s/%d/MLPX", b, run),
				Label: b,
				Suite: p.Suite.String(),
				Vec:   v,
			})
		}
	}
	forward := NewIndex(Options{})
	for _, e := range entries {
		forward.Upsert(e)
	}
	backward := NewIndex(Options{})
	for i := len(entries) - 1; i >= 0; i-- {
		backward.Upsert(entries[i])
	}
	bulk := NewIndex(Options{})
	bulk.Fill(entries)

	if forward.Version() != backward.Version() || forward.Version() != bulk.Version() {
		t.Fatalf("index version depends on insertion order: %s / %s / %s",
			forward.Version(), backward.Version(), bulk.Version())
	}
	fc, bc := forward.Clusters(), backward.Clusters()
	if len(fc) != len(bc) {
		t.Fatalf("cluster count differs: %d vs %d", len(fc), len(bc))
	}
	for i := range fc {
		if fc[i].Label != bc[i].Label || fc[i].Members != bc[i].Members || fc[i].Radius != bc[i].Radius {
			t.Fatalf("cluster %d differs: %+v vs %+v", i, fc[i], bc[i])
		}
	}
}

func TestIndexVersionTracksContent(t *testing.T) {
	ix := NewIndex(Options{})
	if ix.Version() != "empty" {
		t.Fatalf("empty index version %q", ix.Version())
	}
	vec := make([]float64, Dim)
	vec[0] = 1
	ix.Upsert(Entry{Key: "a/1/MLPX", Label: "a", Suite: "HiBench", Vec: vec})
	v1 := ix.Version()
	if v1 == "empty" || v1 == "" {
		t.Fatalf("version after upsert %q", v1)
	}
	// Re-upserting identical content must not change the version.
	ix.Upsert(Entry{Key: "a/1/MLPX", Label: "a", Suite: "HiBench", Vec: vec})
	if ix.Version() != v1 {
		t.Fatalf("idempotent upsert changed version %s -> %s", v1, ix.Version())
	}
	vec2 := make([]float64, Dim)
	vec2[1] = 1
	ix.Upsert(Entry{Key: "b/1/MLPX", Label: "b", Suite: "HiBench", Vec: vec2})
	if ix.Version() == v1 {
		t.Fatal("version unchanged after new entry")
	}
}

func TestClassifyEmptyIndex(t *testing.T) {
	ix := NewIndex(Options{})
	if _, err := ix.Classify(make([]float64, Dim), 3); err != ErrEmpty {
		t.Fatalf("err = %v, want ErrEmpty", err)
	}
}

func TestClassifyMatchBound(t *testing.T) {
	ix := NewIndex(Options{})
	var entries []Entry
	for i := 0; i < 5; i++ {
		vec := make([]float64, Dim)
		vec[i] = 1
		entries = append(entries, Entry{Key: fmt.Sprintf("b%d/1/MLPX", i), Label: fmt.Sprintf("b%d", i), Suite: "s", Vec: vec})
	}
	ix.Fill(entries)
	probe := make([]float64, Dim)
	probe[0] = 1
	res, err := ix.Classify(probe, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 2 {
		t.Fatalf("got %d matches, want 2", len(res.Matches))
	}
	if res.Matches[0].Label != "b0" || res.Matches[0].Distance != 0 {
		t.Fatalf("nearest = %+v", res.Matches[0])
	}
	res, err = ix.Classify(probe, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 5 {
		t.Fatalf("k beyond cluster count: got %d matches, want 5", len(res.Matches))
	}
}

func BenchmarkEmbed(b *testing.B) {
	coll := newColl()
	p, _ := sim.ProfileByName("wordcount")
	run, err := coll.Collect(p, 1, collector.MLPX, coll.Catalogue().Events())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Embed(run.Series, run.IPC)
	}
}

func BenchmarkIndexLookup(b *testing.B) {
	coll := newColl()
	ix := NewIndex(Options{})
	var entries []Entry
	var probe []float64
	for _, bench := range sim.AllBenchmarkNames() {
		v, p := collectEmbed(b, coll, bench, 1)
		entries = append(entries, Entry{Key: bench + "/1/MLPX", Label: bench, Suite: p.Suite.String(), Vec: v})
		probe = v
	}
	ix.Fill(entries)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ix.Classify(probe, 3); err != nil {
			b.Fatal(err)
		}
	}
}
