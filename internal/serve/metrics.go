package serve

import (
	"errors"
	"sync"
	"time"

	counterminer "counterminer"
	"counterminer/internal/clean"
	"counterminer/internal/collector"
	"counterminer/internal/fingerprint"
	"counterminer/internal/store"
	"counterminer/pkg/client"
)

// Metrics is counterminerd's observability surface: request, cache,
// and batch counters, queue gauges, analysis outcomes, and one latency
// histogram per pipeline stage, fed from Analysis.Stages. Everything is
// exported as one JSON document by GET /metrics (the client.Snapshot
// wire type), so any scraper that speaks JSON can consume it without a
// client library. The whole surface — batch and coalesce counters
// included — is pre-registered: every field is present (zeroed) before
// the first request arrives.
type Metrics struct {
	start time.Time

	mu sync.Mutex
	// request-path counters
	requests         uint64
	badRequests      uint64
	rejectedFull     uint64
	rejectedDraining uint64
	cacheHits        uint64
	cacheMisses      uint64
	shared           uint64
	// batch-path counters
	batches        uint64
	batchRejected  uint64
	batchJobs      uint64
	batchDeduped   uint64
	batchCacheHits uint64
	batchExecuted  uint64
	batchJobErrors uint64
	coalesceFlush  uint64
	coalescedJobs  uint64
	// analysis outcomes
	completed uint64
	failed    uint64
	canceled  uint64
	degraded  uint64
	// degradation detail, summed over completed analyses
	retries     uint64
	runsFailed  uint64
	quarantined uint64
	storeErrors uint64
	// fingerprint/classify counters, pre-registered like everything
	// else: the /metrics document carries a zeroed fingerprint section
	// before the first classification arrives.
	classifyRequests    uint64
	classified          uint64
	classifyErrors      uint64
	classifyAnomalies   uint64
	classifyNoIndex     uint64
	classifyCacheHits   uint64
	classifyCacheMisses uint64
	classifyShared      uint64
	indexRebuilds       uint64
	embeds              uint64
	embedErrors         uint64
	embedLatency        *Histogram
	classifyLatency     *Histogram
	// per-stage latency histograms, pre-registered over the full stage
	// plan so the surface is complete before the first analysis.
	stageOrder []string
	stages     map[string]*Histogram
	// per-cleaner Clean-stage accounting, pre-registered over the
	// cleaner registry.
	cleanerOrder []string
	cleaners     map[string]*cleanerStats
}

// cleanerStats is one cleaner's accounting: how often it ran, what it
// corrected, and its Clean-stage latency.
type cleanerStats struct {
	analyses uint64
	outliers uint64
	missing  uint64
	latency  *Histogram
}

// NewMetrics returns a metrics registry with one histogram per
// pipeline stage (in plan order, from counterminer.StageNames).
func NewMetrics() *Metrics {
	m := &Metrics{
		start:           time.Now(),
		stageOrder:      counterminer.StageNames(),
		stages:          make(map[string]*Histogram),
		cleanerOrder:    clean.Names(),
		cleaners:        make(map[string]*cleanerStats),
		embedLatency:    NewHistogram(),
		classifyLatency: NewHistogram(),
	}
	for _, s := range m.stageOrder {
		m.stages[s] = NewHistogram()
	}
	for _, c := range m.cleanerOrder {
		m.cleaners[c] = &cleanerStats{latency: NewHistogram()}
	}
	return m
}

// IncRequest counts one /analyze request (before admission).
func (m *Metrics) IncRequest() { m.inc(&m.requests) }

// IncBadRequest counts one request rejected as malformed.
func (m *Metrics) IncBadRequest() { m.inc(&m.badRequests) }

// IncRejected counts one admission rejection by cause.
func (m *Metrics) IncRejected(err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if errors.Is(err, ErrDraining) {
		m.rejectedDraining++
	} else {
		m.rejectedFull++
	}
}

// IncCacheHit / IncCacheMiss / IncShared count result-cache outcomes:
// a hit served from the LRU, a miss that became a pipeline execution,
// and a request that attached to an identical in-flight execution.
func (m *Metrics) IncCacheHit()  { m.inc(&m.cacheHits) }
func (m *Metrics) IncCacheMiss() { m.inc(&m.cacheMisses) }
func (m *Metrics) IncShared()    { m.inc(&m.shared) }

// ObserveBatch folds one scheduled batch's accounting into the
// batch counters.
func (m *Metrics) ObserveBatch(st BatchStats) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.batches++
	m.batchJobs += uint64(st.Submitted)
	m.batchDeduped += uint64(st.Deduped)
	m.batchCacheHits += uint64(st.CacheHits)
	m.batchExecuted += uint64(st.Executed)
	m.batchJobErrors += uint64(st.Errors)
}

// IncBatchRejected counts one whole-batch overload rejection (429 or
// 503).
func (m *Metrics) IncBatchRejected() { m.inc(&m.batchRejected) }

// ObserveCoalesce counts one coalescing-window flush merging n single
// submissions.
func (m *Metrics) ObserveCoalesce(n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.coalesceFlush++
	m.coalescedJobs += uint64(n)
}

func (m *Metrics) inc(c *uint64) {
	m.mu.Lock()
	*c++
	m.mu.Unlock()
}

// Classify-path counters: one per /classify request, per cache
// outcome (hit / miss-turned-execution / shared in-flight), and for
// requests refused because the node runs without a store.
func (m *Metrics) IncClassifyRequest()   { m.inc(&m.classifyRequests) }
func (m *Metrics) IncClassifyNoIndex()   { m.inc(&m.classifyNoIndex) }
func (m *Metrics) IncClassifyCacheHit()  { m.inc(&m.classifyCacheHits) }
func (m *Metrics) IncClassifyCacheMiss() { m.inc(&m.classifyCacheMisses) }
func (m *Metrics) IncClassifyShared()    { m.inc(&m.classifyShared) }

// IncIndexRebuild counts one full fingerprint-index rebuild from the
// store (startup, or an explicit resync).
func (m *Metrics) IncIndexRebuild() { m.inc(&m.indexRebuilds) }

// ObserveEmbed records one fingerprint-embedding execution (a
// KindFingerprint job, local or dispatched).
func (m *Metrics) ObserveEmbed(err error, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err != nil {
		m.embedErrors++
		return
	}
	m.embeds++
	m.embedLatency.Observe(d)
}

// ObserveClassify records one finished classification: outcome,
// anomaly verdict, and end-to-end latency.
func (m *Metrics) ObserveClassify(cls *client.Classification, err error, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err != nil {
		m.classifyErrors++
		return
	}
	m.classified++
	if cls != nil && cls.Anomaly {
		m.classifyAnomalies++
	}
	m.classifyLatency.Observe(d)
}

// ObserveAnalysis records one finished pipeline execution: outcome
// counters, per-stage latency, and degradation accounting.
func (m *Metrics) ObserveAnalysis(ana *counterminer.Analysis, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err != nil {
		if errors.Is(err, counterminer.ErrCanceled) {
			m.canceled++
		} else {
			m.failed++
		}
		return
	}
	m.completed++
	d := &ana.Degradation
	if d.Degraded() {
		m.degraded++
	}
	m.retries += uint64(d.Retries)
	m.runsFailed += uint64(len(d.RunsFailed))
	m.quarantined += uint64(len(d.EventsQuarantined))
	m.storeErrors += uint64(len(d.StoreErrors))
	for _, st := range ana.Stages {
		h, ok := m.stages[st.Stage]
		if !ok {
			h = NewHistogram()
			m.stages[st.Stage] = h
			m.stageOrder = append(m.stageOrder, st.Stage)
		}
		h.Observe(st.Duration)
	}
	if ana.Cleaner != "" {
		cs, ok := m.cleaners[ana.Cleaner]
		if !ok {
			cs = &cleanerStats{latency: NewHistogram()}
			m.cleaners[ana.Cleaner] = cs
			m.cleanerOrder = append(m.cleanerOrder, ana.Cleaner)
		}
		cs.analyses++
		cs.outliers += uint64(ana.OutliersReplaced)
		cs.missing += uint64(ana.MissingFilled)
		for _, st := range ana.Stages {
			if st.Stage == counterminer.StageClean {
				cs.latency.Observe(st.Duration)
			}
		}
	}
}

// gauges bundles the live-state sources SnapshotFrom reads alongside
// the counters; any field may be nil.
type gauges struct {
	queue     *Queue
	cache     *Cache[*counterminer.Analysis]
	coll      *collector.Collector
	db        *store.DB
	index     *fingerprint.Index
	coalescer interface{ Pending() int }
	cluster   func() client.ClusterCounters
}

// SnapshotFrom assembles the full metrics document from the registry
// plus the queue, cache, coalescer, and collector gauges.
func (m *Metrics) SnapshotFrom(g gauges) Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	snap := Snapshot{
		UptimeSeconds: time.Since(m.start).Seconds(),
		Requests: RequestCounters{
			Total:              m.requests,
			BadRequests:        m.badRequests,
			RejectedQueueFull:  m.rejectedFull,
			RejectedDraining:   m.rejectedDraining,
			CacheHits:          m.cacheHits,
			CacheMisses:        m.cacheMisses,
			SingleflightShared: m.shared,
		},
		Batch: BatchCounters{
			Batches:         m.batches,
			Rejected:        m.batchRejected,
			Jobs:            m.batchJobs,
			Deduped:         m.batchDeduped,
			CacheHits:       m.batchCacheHits,
			Executed:        m.batchExecuted,
			JobErrors:       m.batchJobErrors,
			CoalesceFlushes: m.coalesceFlush,
			CoalescedJobs:   m.coalescedJobs,
		},
		Analyses: AnalysisCounters{
			Completed:         m.completed,
			Failed:            m.failed,
			Canceled:          m.canceled,
			Degraded:          m.degraded,
			Retries:           m.retries,
			RunsFailed:        m.runsFailed,
			EventsQuarantined: m.quarantined,
			StoreErrors:       m.storeErrors,
		},
		Fingerprint: FingerprintCounters{
			ClassifyRequests:    m.classifyRequests,
			Classified:          m.classified,
			ClassifyErrors:      m.classifyErrors,
			ClassifyAnomalies:   m.classifyAnomalies,
			ClassifyNoIndex:     m.classifyNoIndex,
			ClassifyCacheHits:   m.classifyCacheHits,
			ClassifyCacheMisses: m.classifyCacheMisses,
			ClassifyShared:      m.classifyShared,
			IndexRebuilds:       m.indexRebuilds,
			Embeds:              m.embeds,
			EmbedErrors:         m.embedErrors,
			EmbedLatency:        m.embedLatency.snapshot("embed"),
			ClassifyLatency:     m.classifyLatency.snapshot("classify"),
		},
	}
	if g.index != nil {
		snap.Fingerprint.IndexEntries = g.index.Len()
		snap.Fingerprint.IndexClusters = g.index.NumClusters()
		snap.Fingerprint.IndexVersion = g.index.Version()
	}
	if g.queue != nil {
		snap.Queue = QueueGauges{
			Depth: g.queue.Depth(), Capacity: g.queue.Capacity(),
			Active: g.queue.Active(), Executed: g.queue.Executed(),
		}
	}
	if g.cache != nil {
		snap.Cache = CacheGauges{
			Entries: g.cache.Len(), Capacity: g.cache.Capacity(), Evictions: g.cache.Evictions(),
		}
	}
	if g.coll != nil {
		builds, hits := g.coll.MemoStats()
		snap.Collector = CollectorCounters{Builds: builds, MemoHits: hits}
	}
	if g.coalescer != nil {
		snap.Batch.CoalescePending = g.coalescer.Pending()
	}
	if g.cluster != nil {
		cc := g.cluster()
		snap.Cluster = &cc
	}
	if g.db != nil {
		st := g.db.ShardStats()
		snap.Store = &StoreShardStats{
			Shards:           st.Shards,
			LoadedShards:     st.Loaded,
			DirtyShards:      st.Dirty,
			ResidentBytes:    st.ResidentBytes,
			MemBudgetBytes:   st.MemBudgetBytes,
			ShardLoads:       st.Loads,
			ShardEvictions:   st.Evictions,
			WritebackFlushes: st.WritebackFlushes,
			WritebackErrors:  st.WritebackErrors,
			SkippedRecords:   st.SkippedRecords,
		}
	}
	for _, name := range m.stageOrder {
		snap.StageLatency = append(snap.StageLatency, m.stages[name].snapshot(name))
	}
	for _, name := range m.cleanerOrder {
		cs := m.cleaners[name]
		snap.Cleaners = append(snap.Cleaners, CleanerCounters{
			Cleaner:          name,
			Analyses:         cs.analyses,
			OutliersReplaced: cs.outliers,
			MissingFilled:    cs.missing,
			CleanLatency:     cs.latency.snapshot(counterminer.StageClean),
		})
	}
	return snap
}

// histogramBounds are the latency bucket upper bounds. Stage times
// span sub-millisecond validation to multi-second model fits, so the
// bounds are roughly logarithmic.
var histogramBounds = []time.Duration{
	time.Millisecond, 2 * time.Millisecond, 5 * time.Millisecond,
	10 * time.Millisecond, 25 * time.Millisecond, 50 * time.Millisecond,
	100 * time.Millisecond, 250 * time.Millisecond, 500 * time.Millisecond,
	time.Second, 2500 * time.Millisecond, 5 * time.Second, 10 * time.Second,
}

// Histogram is a fixed-bound latency histogram. It is not
// self-locking; the owning Metrics registry serializes access.
type Histogram struct {
	counts []uint64 // one per bound, plus overflow at the end
	count  uint64
	sum    time.Duration
}

// NewHistogram returns an empty histogram over histogramBounds.
func NewHistogram() *Histogram {
	return &Histogram{counts: make([]uint64, len(histogramBounds)+1)}
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	i := 0
	for i < len(histogramBounds) && d > histogramBounds[i] {
		i++
	}
	h.counts[i]++
	h.count++
	h.sum += d
}

// snapshot renders the histogram with cumulative bucket counts
// (Prometheus-style: each bucket counts observations <= its bound; the
// final bucket, LeMs = -1 meaning +Inf, equals Count).
func (h *Histogram) snapshot(stage string) StageHistogram {
	out := StageHistogram{
		Stage: stage,
		Count: h.count,
		SumMs: float64(h.sum) / float64(time.Millisecond),
	}
	cum := uint64(0)
	for i, b := range histogramBounds {
		cum += h.counts[i]
		out.Buckets = append(out.Buckets, BucketCount{
			LeMs:  float64(b) / float64(time.Millisecond),
			Count: cum,
		})
	}
	out.Buckets = append(out.Buckets, BucketCount{LeMs: -1, Count: h.count})
	return out
}
