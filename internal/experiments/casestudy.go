package experiments

import (
	"context"
	"fmt"

	"counterminer/internal/parallel"
	"counterminer/internal/sim"
	"counterminer/internal/spark"
)

// Fig13 regenerates Figure 13: the interaction importance between
// Spark configuration parameters and events, per HiBench benchmark.
// The paper's shape: each benchmark has one or two parameter-event
// pairs far stronger than the rest, and the dominant pair varies
// across benchmarks.
func Fig13(ctx context.Context, cfg Config) (*Table, error) {
	cfg = cfg.WithDefaults()
	cat := sim.NewCatalogue()
	cluster := spark.NewCluster(cat)

	benches := []string{}
	for _, p := range sim.ProfilesBySuite(sim.HiBench) {
		if cfg.Benchmarks != nil {
			ok := false
			for _, b := range cfg.Benchmarks {
				if b == p.Name {
					ok = true
				}
			}
			if !ok {
				continue
			}
		}
		benches = append(benches, p.Name)
	}
	if len(benches) == 0 {
		benches = []string{"sort"}
	}

	type row struct {
		bench string
		cells []string
		dom   string
	}
	rows := make([]row, len(benches))
	err := parallel.ForEachCtx(ctx, len(benches), cfg.Workers, func(i int) error {
		scores, err := cluster.RankParamEventInteractions(benches[i], 10, cfg.Reps+1)
		if err != nil {
			return err
		}
		r := row{bench: benches[i]}
		for k, s := range scores {
			if k >= 10 {
				break
			}
			r.cells = append(r.cells, fmt.Sprintf("%s(%.1f%%)", s.Key(), s.Importance))
		}
		if len(scores) > 0 {
			r.dom = scores[0].Key()
		}
		rows[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:     "fig13",
		Title:  "Interaction rank of Spark configuration parameter and event pairs",
		Header: []string{"benchmark", "dominant pair", "top pairs (importance)"},
	}
	dominants := map[string]bool{}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{r.bench, r.dom, joinCells(r.cells)})
		dominants[r.dom] = true
	}
	t.Notes = append(t.Notes,
		"paper: one or two parameter-event pairs dominate per benchmark; the dominant pair varies across benchmarks",
		fmt.Sprintf("measured: %d distinct dominant pairs across %d benchmarks", len(dominants), len(rows)),
		"paper's sort example: ORO-bbs is sort's dominant pair")
	return t, nil
}

// Fig14 regenerates Figure 14: execution time of sort while tuning bbs
// (spark.broadcast.blockSize, coupled to sort's most important event
// ORO) versus tuning nwt (spark.network.timeout, coupled to the
// unimportant I4U). Paper: 111.3% average execution-time variation for
// bbs vs 29.4% for nwt.
func Fig14(ctx context.Context, cfg Config) (*Table, error) {
	cfg = cfg.WithDefaults()
	cluster := spark.NewCluster(sim.NewCatalogue())

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	bbs, err := cluster.SweepParam("sort", "bbs", cfg.Reps+1)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	nwt, err := cluster.SweepParam("sort", "nwt", cfg.Reps+1)
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:     "fig14",
		Title:  "Execution time (s) of sort while tuning bbs vs nwt",
		Header: []string{"param", "values", "exec times (s)", "variation"},
	}
	render := func(s *spark.SweepResult) []string {
		var vals, times string
		for i := range s.Values {
			if i > 0 {
				vals += " "
				times += " "
			}
			vals += fmt.Sprintf("%g%s", s.Values[i], s.Param.Unit)
			times += fmt.Sprintf("%.0f", s.ExecTimes[i])
		}
		return []string{s.Param.Abbrev, vals, times, pct(s.VariationPct())}
	}
	t.Rows = append(t.Rows, render(bbs), render(nwt))
	t.Notes = append(t.Notes,
		fmt.Sprintf("paper: bbs variation 111.3%%, nwt variation 29.4%%; measured: bbs %s, nwt %s",
			pct(bbs.VariationPct()), pct(nwt.VariationPct())),
		"shape: tuning the parameter coupled to the important event moves execution time several times more")
	return t, nil
}

// Fig15 regenerates Figure 15's accounting: the number of benchmark
// runs needed to identify important configuration parameters by method
// A (event importance first) versus method B (direct parameter
// ranking). Paper (pagerank): method B needs 6000 runs, method A 1580
// (60 model-building + 1520 coupling sweep) — about a quarter.
func Fig15(ctx context.Context, cfg Config) (*Table, error) {
	cm := spark.PaperCostModel()
	t := &Table{
		ID:     "fig15",
		Title:  "Profiling cost: method A (event importance) vs method B (direct parameter ranking)",
		Header: []string{"quantity", "runs"},
	}
	t.Rows = append(t.Rows,
		[]string{"method B: training examples = runs", fmt.Sprint(cm.MethodBRuns())},
		[]string{"method A: model-building runs", fmt.Sprint(cm.ModelBuildingRuns())},
		[]string{"method A: coupling-sweep runs", fmt.Sprint(cm.CouplingSweepRuns())},
		[]string{"method A: total", fmt.Sprint(cm.MethodARuns())},
	)
	t.Notes = append(t.Notes,
		fmt.Sprintf("paper: 6000 vs 1580 runs (~1/4); measured model: %s", cm.String()))
	return t, nil
}
