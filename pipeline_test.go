package counterminer

import (
	"path/filepath"
	"testing"

	"counterminer/internal/store"
)

// fastOptions keeps test pipelines quick: a 24-event subset, no EIR.
func fastOptions(t *testing.T) Options {
	t.Helper()
	p, err := NewPipeline(Options{})
	if err != nil {
		t.Fatal(err)
	}
	events := p.Catalogue().Events()[:24]
	return Options{Runs: 2, Trees: 40, Events: events, SkipEIR: true, TopK: 5}
}

func TestPipelineAnalyzeQuick(t *testing.T) {
	p, err := NewPipeline(fastOptions(t))
	if err != nil {
		t.Fatal(err)
	}
	a, err := p.Analyze("wordcount")
	if err != nil {
		t.Fatal(err)
	}
	if a.Benchmark != "wordcount" || a.Events != 24 {
		t.Errorf("analysis = %+v", a)
	}
	if len(a.Importance) != 24 {
		t.Errorf("importance entries = %d", len(a.Importance))
	}
	total := 0.0
	for _, e := range a.Importance {
		total += e.Importance
		if e.Abbrev == "" {
			t.Errorf("event %s without abbrev", e.Event)
		}
	}
	if total < 99.5 || total > 100.5 {
		t.Errorf("importance total = %v", total)
	}
	if len(a.Interactions) != 10 { // C(5,2)
		t.Errorf("interactions = %d, want 10", len(a.Interactions))
	}
	if a.ModelError <= 0 {
		t.Errorf("model error = %v", a.ModelError)
	}
	if a.MissingFilled == 0 && a.OutliersReplaced == 0 {
		t.Error("cleaner reported no work on MLPX data")
	}
	if len(a.EIRNumEvents) != 1 {
		t.Errorf("SkipEIR produced %d EIR steps", len(a.EIRNumEvents))
	}
}

func TestPipelineTopHelpers(t *testing.T) {
	a := &Analysis{
		Importance: []EventScore{
			{Abbrev: "A", Importance: 9},
			{Abbrev: "B", Importance: 8},
			{Abbrev: "C", Importance: 7},
			{Abbrev: "D", Importance: 1},
		},
		Interactions: []PairScore{{A: "A", B: "B", Importance: 60}},
	}
	if got := a.TopEvents(2); len(got) != 2 || got[0].Abbrev != "A" {
		t.Errorf("TopEvents = %+v", got)
	}
	if got := a.TopEvents(99); len(got) != 4 {
		t.Errorf("TopEvents overflow = %d", len(got))
	}
	if got := a.TopInteractions(5); len(got) != 1 || got[0].Key() != "A-B" {
		t.Errorf("TopInteractions = %+v", got)
	}
	if got := a.SMICount(); got != 3 {
		t.Errorf("SMICount = %d, want 3", got)
	}
	small := &Analysis{Importance: []EventScore{{Abbrev: "A"}}}
	if small.SMICount() != 1 {
		t.Error("SMICount on short ranking")
	}
}

func TestPipelineUnknownBenchmark(t *testing.T) {
	p, err := NewPipeline(fastOptions(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Analyze("nope"); err == nil {
		t.Error("unknown benchmark should error")
	}
}

func TestPipelineBenchmarksList(t *testing.T) {
	p, err := NewPipeline(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Benchmarks(); len(got) != 16 {
		t.Errorf("benchmarks = %d", len(got))
	}
}

func TestPipelineEIRMode(t *testing.T) {
	opts := fastOptions(t)
	opts.SkipEIR = false
	opts.PruneStep = 8
	p, err := NewPipeline(opts)
	if err != nil {
		t.Fatal(err)
	}
	a, err := p.Analyze("sort")
	if err != nil {
		t.Fatal(err)
	}
	// 24 -> 16 -> 8: three steps.
	if len(a.EIRNumEvents) != 3 {
		t.Errorf("EIR steps = %v", a.EIRNumEvents)
	}
	if a.MAPMEvents > 24 || a.MAPMEvents < 8 {
		t.Errorf("MAPM events = %d", a.MAPMEvents)
	}
}

func TestPipelineColocated(t *testing.T) {
	opts := fastOptions(t)
	p, err := NewPipeline(opts)
	if err != nil {
		t.Fatal(err)
	}
	a, err := p.AnalyzeColocated("DataCaching", "GraphAnalytics")
	if err != nil {
		t.Fatal(err)
	}
	if a.Benchmark != "DataCaching+GraphAnalytics" {
		t.Errorf("benchmark = %s", a.Benchmark)
	}
	if _, err := p.AnalyzeColocated("nope", "DataCaching"); err == nil {
		t.Error("unknown first benchmark should error")
	}
	if _, err := p.AnalyzeColocated("DataCaching", "nope"); err == nil {
		t.Error("unknown second benchmark should error")
	}
}

func TestPipelinePersistence(t *testing.T) {
	opts := fastOptions(t)
	opts.StorePath = filepath.Join(t.TempDir(), "runs.db")
	p, err := NewPipeline(opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Analyze("scan"); err != nil {
		t.Fatal(err)
	}
	db, err := store.Open(opts.StorePath)
	if err != nil {
		t.Fatal(err)
	}
	if db.Len() != opts.Runs {
		t.Errorf("persisted runs = %d, want %d", db.Len(), opts.Runs)
	}
	metas := db.ListBenchmark("scan")
	if len(metas) != opts.Runs {
		t.Errorf("scan runs = %d", len(metas))
	}
	if metas[0].Mode != "MLPX" {
		t.Errorf("mode = %s", metas[0].Mode)
	}
}

func TestPipelineEventValidation(t *testing.T) {
	opts := Options{Events: []string{"only-one"}}
	p, err := NewPipeline(opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Analyze("wordcount"); err == nil {
		t.Error("single event should error")
	}
}
