// Package stats implements the statistical machinery CounterMiner needs:
// descriptive statistics, the Gaussian / Gumbel / logistic / generalized
// extreme value (GEV) distributions used for the event-value census of
// §III-B, the Anderson-Darling goodness-of-fit test (the paper uses
// scipy.stats.anderson), and histogramming for the outlier-replacement
// rule of eq. (7).
//
// Everything is implemented from scratch on the standard library.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by functions that require at least one sample.
var ErrEmpty = errors.New("stats: empty sample")

// Mean returns the arithmetic mean of xs, or 0 if xs is empty.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs (0 if fewer than two
// samples).
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n)
}

// Std returns the population standard deviation of xs.
func Std(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// MeanStd returns both the mean and the population standard deviation in
// one pass over the data.
func MeanStd(xs []float64) (mean, std float64) {
	n := len(xs)
	if n == 0 {
		return 0, 0
	}
	sum, sumsq := 0.0, 0.0
	for _, x := range xs {
		sum += x
		sumsq += x * x
	}
	mean = sum / float64(n)
	v := sumsq/float64(n) - mean*mean
	if v < 0 {
		v = 0 // guard against FP cancellation
	}
	return mean, math.Sqrt(v)
}

// MinMax returns the extrema of xs; (+Inf, -Inf) for empty input.
func MinMax(xs []float64) (min, max float64) {
	min, max = math.Inf(1), math.Inf(-1)
	for _, x := range xs {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// Median returns the median of xs, or 0 for empty input. xs is not
// modified.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	n := len(sorted)
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}

// Skewness returns the sample skewness (Fisher-Pearson, population
// normalisation) of xs, or 0 for fewer than three samples or a constant
// sample. The event-value census uses it to distinguish long-tail
// distributions from symmetric ones.
func Skewness(xs []float64) float64 {
	n := len(xs)
	if n < 3 {
		return 0
	}
	m, sd := MeanStd(xs)
	if sd == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		d := (x - m) / sd
		s += d * d * d
	}
	return s / float64(n)
}

// Correlation returns the Pearson correlation coefficient between xs and
// ys, which must have equal nonzero length. It returns 0 when either
// side is constant.
func Correlation(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, errors.New("stats: correlation of unequal-length samples")
	}
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	mx, sx := MeanStd(xs)
	my, sy := MeanStd(ys)
	if sx == 0 || sy == 0 {
		return 0, nil
	}
	s := 0.0
	for i := range xs {
		s += (xs[i] - mx) * (ys[i] - my)
	}
	return s / (float64(len(xs)) * sx * sy), nil
}
