package counterminer

import (
	"reflect"
	"testing"
)

// TestParallelMatchesSerial is the pipeline-level determinism contract:
// the same benchmark, seed, and event set must produce a bit-identical
// Analysis — importance ranking, interaction ranking, EIR curve, model
// error, cleaner counts — no matter how many workers run the analysis
// stages.
func TestParallelMatchesSerial(t *testing.T) {
	analyze := func(workers int) *Analysis {
		t.Helper()
		opts := fastOptions(t)
		opts.SkipEIR = false
		opts.PruneStep = 8
		opts.Trees = 20
		opts.Workers = workers
		p, err := NewPipeline(opts)
		if err != nil {
			t.Fatal(err)
		}
		a, err := p.Analyze("wordcount")
		if err != nil {
			t.Fatal(err)
		}
		// Stage timings are wall-clock observability metadata, the one
		// Analysis field that legitimately differs between runs.
		a.Stages = nil
		return a
	}

	serial := analyze(1)
	for _, workers := range []int{2, 8} {
		got := analyze(workers)
		if !reflect.DeepEqual(got, serial) {
			t.Errorf("analysis at workers=%d differs from workers=1:\n got %+v\nwant %+v",
				workers, got, serial)
		}
	}
}
