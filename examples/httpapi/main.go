// HTTP API: start the counterminerd service in-process, then drive it
// through pkg/client, the typed Go client — one analysis, a whole
// benchmark sweep through the batch endpoint, and the metrics surface.
//
//	go run ./examples/httpapi
package main

import (
	"context"
	"fmt"
	"log"
	"net"

	"counterminer/internal/serve"
	"counterminer/pkg/client"
)

func main() {
	// Start the service on an ephemeral port. A deployment would run
	// `counterminerd -addr :7070 -db runs.db` instead; everything below
	// the listener is identical.
	srv, err := serve.New(serve.Config{Workers: 2})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx, ln) }()

	// The typed client handles JSON, typed errors, and Retry-After-aware
	// retry on 429/503 — no hand-rolled wire structs.
	c := client.New("http://" + ln.Addr().String())

	// What can we analyse?
	catalog, err := c.Benchmarks(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("service at %s offers %d benchmarks\n", ln.Addr(), len(catalog.Available))

	// Run one analysis. The same request twice demonstrates the
	// content-addressed result cache: the repeat answers instantly.
	req := client.AnalyzeRequest{
		Benchmark: "wordcount",
		Events:    []string{"ICACHE.*", "L2_RQSTS.*", "BR_INST_RETIRED.*"},
		Runs:      2,
		Trees:     40,
		SkipEIR:   true,
	}
	for i := 0; i < 2; i++ {
		ar, err := c.Analyze(ctx, req)
		if err != nil {
			log.Fatal(err) // a *client.APIError carries status + typed code
		}
		fmt.Printf("analysis %d: cached=%v elapsed=%.0fms model error %.1f%%, top event %s\n",
			i+1, ar.Cached, ar.ElapsedMs, ar.Analysis.ModelError,
			ar.Analysis.TopEvents(1)[0].Event)
	}

	// A whole sweep in one round-trip: the batch endpoint dedups exact
	// duplicates (the wordcount job repeats the cached request above),
	// groups the rest by benchmark for collector reuse, and a bad job
	// comes back as a typed per-job error without failing the batch.
	jobs := []client.AnalyzeRequest{
		req, // cache hit
		{Benchmark: "sort", Runs: 2, Trees: 40, SkipEIR: true, Events: req.Events},
		req,                            // exact duplicate -> deduped
		{Benchmark: "not-a-benchmark"}, // typed per-job error
		{Benchmark: "pagerank", Runs: 2, Trees: 40, SkipEIR: true, Events: req.Events},
	}
	batch, err := c.AnalyzeBatch(ctx, jobs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("batch: %d jobs -> %d executed, %d cache hits, %d deduped, %d errors (schedule %v)\n",
		batch.Stats.Submitted, batch.Stats.Executed, batch.Stats.CacheHits,
		batch.Stats.Deduped, batch.Stats.Errors, batch.Stats.ScheduleOrder)
	for _, jr := range batch.Jobs { // request order, one entry per job
		switch {
		case jr.Error != nil:
			fmt.Printf("  job %d: %s (%s)\n", jr.Index, jr.Error.Error, jr.Error.Message)
		default:
			fmt.Printf("  job %d: %s model error %.1f%% cached=%v deduped=%v\n",
				jr.Index, jr.Analysis.Benchmark, jr.Analysis.ModelError, jr.Cached, jr.Deduped)
		}
	}

	// The metrics surface shows the batch machinery doing its job.
	snap, err := c.Metrics(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("metrics: %d requests, %d analyses executed, %d batch jobs (%d deduped, %d cache hits)\n",
		snap.Requests.Total, snap.Analyses.Completed,
		snap.Batch.Jobs, snap.Batch.Deduped, snap.Batch.CacheHits)

	// Graceful shutdown: in-flight work drains, the store would flush.
	cancel()
	if err := <-done; err != nil {
		log.Fatal(err)
	}
	fmt.Println("service drained cleanly")
}
