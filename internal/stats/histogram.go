package stats

import (
	"errors"
	"math"
)

// Histogram partitions a sample range into equal-width intervals. The
// data cleaner uses it for the outlier-replacement rule of eq. (7): the
// interval width is
//
//	L = (max - min) / roundup(sqrt(count))
//
// and an outlier is replaced by the median of the interval it falls in.
type Histogram struct {
	Min, Max float64
	// Width is the interval width L.
	Width float64
	// Bins holds the sample values assigned to each interval.
	Bins [][]float64
}

// NewHistogram builds the eq. (7) histogram over xs. It returns an error
// for an empty sample; a constant sample produces a single bin.
func NewHistogram(xs []float64) (*Histogram, error) {
	if len(xs) == 0 {
		return nil, errors.New("stats: histogram of empty sample")
	}
	min, max := MinMax(xs)
	nbins := int(math.Ceil(math.Sqrt(float64(len(xs)))))
	if nbins < 1 {
		nbins = 1
	}
	h := &Histogram{Min: min, Max: max}
	if max == min {
		h.Width = 0
		h.Bins = [][]float64{append([]float64(nil), xs...)}
		return h, nil
	}
	h.Width = (max - min) / float64(nbins)
	h.Bins = make([][]float64, nbins)
	for _, x := range xs {
		i := h.BinIndex(x)
		h.Bins[i] = append(h.Bins[i], x)
	}
	return h, nil
}

// BinIndex returns the index of the interval containing x; values
// outside [Min, Max] are clamped to the edge bins.
func (h *Histogram) BinIndex(x float64) int {
	if h.Width == 0 || len(h.Bins) == 1 {
		return 0
	}
	i := int((x - h.Min) / h.Width)
	if i < 0 {
		return 0
	}
	if i >= len(h.Bins) {
		return len(h.Bins) - 1
	}
	return i
}

// BinMedian returns the median of the interval containing x. If that
// interval is empty (possible when x is an extreme outlier clamped to an
// edge bin with no members), the nearest non-empty interval's median is
// used, so the result is always defined for a non-empty histogram.
func (h *Histogram) BinMedian(x float64) float64 {
	i := h.BinIndex(x)
	if len(h.Bins[i]) > 0 {
		return Median(h.Bins[i])
	}
	// Search outward for the nearest non-empty bin.
	for d := 1; d < len(h.Bins); d++ {
		if j := i - d; j >= 0 && len(h.Bins[j]) > 0 {
			return Median(h.Bins[j])
		}
		if j := i + d; j < len(h.Bins) && len(h.Bins[j]) > 0 {
			return Median(h.Bins[j])
		}
	}
	return 0 // unreachable for non-empty histograms
}

// Counts returns the number of samples per interval.
func (h *Histogram) Counts() []int {
	out := make([]int, len(h.Bins))
	for i, b := range h.Bins {
		out[i] = len(b)
	}
	return out
}
