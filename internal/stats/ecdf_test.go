package stats

import (
	"math/rand"
	"testing"
)

func TestECDFBasics(t *testing.T) {
	e, err := NewECDF([]float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if e.Len() != 4 {
		t.Errorf("Len = %d", e.Len())
	}
	cases := []struct{ x, want float64 }{
		{0, 0}, {1, 0.25}, {2.5, 0.5}, {4, 1}, {99, 1},
	}
	for _, c := range cases {
		if got := e.At(c.x); got != c.want {
			t.Errorf("At(%v) = %v, want %v", c.x, got, c.want)
		}
	}
	if _, err := NewECDF(nil); err == nil {
		t.Error("empty should error")
	}
}

func TestECDFQuantile(t *testing.T) {
	e, _ := NewECDF([]float64{10, 20, 30, 40, 50})
	q, err := e.Quantile(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if q != 30 {
		t.Errorf("median = %v", q)
	}
	if q, _ := e.Quantile(0); q != 10 {
		t.Errorf("Quantile(0) = %v", q)
	}
	if q, _ := e.Quantile(1); q != 50 {
		t.Errorf("Quantile(1) = %v", q)
	}
	if _, err := e.Quantile(1.5); err == nil {
		t.Error("out-of-range quantile should error")
	}
}

func TestECDFMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	e, _ := NewECDF(xs)
	prev := -1.0
	for x := -4.0; x <= 4.0; x += 0.05 {
		v := e.At(x)
		if v < prev {
			t.Fatalf("ECDF not monotone at %v", x)
		}
		prev = v
	}
}

func TestKSIdenticalSamples(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	xs := make([]float64, 800)
	ys := make([]float64, 800)
	for i := range xs {
		xs[i] = rng.NormFloat64()
		ys[i] = rng.NormFloat64()
	}
	d, p, err := KolmogorovSmirnov(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if d > 0.1 {
		t.Errorf("D = %v for same-distribution samples", d)
	}
	if p < 0.01 {
		t.Errorf("p = %v, same distribution should not be rejected", p)
	}
}

func TestKSDifferentDistributions(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	xs := make([]float64, 800)
	ys := make([]float64, 800)
	for i := range xs {
		xs[i] = rng.NormFloat64()
		ys[i] = rng.NormFloat64() + 1.5 // shifted
	}
	d, p, err := KolmogorovSmirnov(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if d < 0.3 {
		t.Errorf("D = %v for shifted samples", d)
	}
	if p > 1e-6 {
		t.Errorf("p = %v, shifted distribution should be strongly rejected", p)
	}
}

func TestKSValidation(t *testing.T) {
	if _, _, err := KolmogorovSmirnov(nil, []float64{1}); err == nil {
		t.Error("empty should error")
	}
}

func TestKSQBounds(t *testing.T) {
	if ksQ(0) != 1 {
		t.Error("ksQ(0) != 1")
	}
	if q := ksQ(10); q > 1e-10 {
		t.Errorf("ksQ(10) = %v", q)
	}
	prev := 1.0
	for l := 0.1; l < 3; l += 0.1 {
		q := ksQ(l)
		if q > prev+1e-12 {
			t.Fatalf("ksQ not decreasing at %v", l)
		}
		if q < 0 || q > 1 {
			t.Fatalf("ksQ out of [0,1]: %v", q)
		}
		prev = q
	}
}
