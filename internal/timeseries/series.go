// Package timeseries provides the time-series type used throughout
// CounterMiner to represent sampled hardware-counter event values.
//
// A Series is an ordered sequence of sampled values for a single
// microarchitecture event of a single program run (eq. (5) of the paper:
// TS_ei = {V_i1, ..., V_in}). Lengths of different series may differ even
// for the same event of the same program because of the non-deterministic
// behaviour of a modern OS; all consumers of this package must therefore
// tolerate ragged lengths.
package timeseries

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Series is one sampled event time series. The zero value is an empty,
// ready-to-append series.
type Series struct {
	// Event is the canonical event name, e.g. "ICACHE.MISSES".
	Event string
	// Values holds one sampled value per measurement interval.
	Values []float64
}

// New returns a Series for event with the given values. The slice is
// used directly (not copied); callers that keep mutating the input
// should pass a copy.
func New(event string, values []float64) *Series {
	return &Series{Event: event, Values: values}
}

// Len reports the number of sampled values.
func (s *Series) Len() int { return len(s.Values) }

// Append adds one sampled value to the end of the series.
func (s *Series) Append(v float64) { s.Values = append(s.Values, v) }

// At returns the i-th sampled value.
func (s *Series) At(i int) float64 { return s.Values[i] }

// Clone returns a deep copy of the series.
func (s *Series) Clone() *Series {
	out := &Series{Event: s.Event, Values: make([]float64, len(s.Values))}
	copy(out.Values, s.Values)
	return out
}

// String implements fmt.Stringer with a compact summary rather than the
// full value dump, since series routinely hold thousands of samples.
func (s *Series) String() string {
	if s.Len() == 0 {
		return fmt.Sprintf("%s[empty]", s.Event)
	}
	return fmt.Sprintf("%s[n=%d mean=%.4g min=%.4g max=%.4g]",
		s.Event, s.Len(), s.Mean(), s.Min(), s.Max())
}

// Mean returns the arithmetic mean, or 0 for an empty series.
func (s *Series) Mean() float64 {
	if len(s.Values) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.Values {
		sum += v
	}
	return sum / float64(len(s.Values))
}

// Std returns the population standard deviation, or 0 for a series with
// fewer than two samples.
func (s *Series) Std() float64 {
	n := len(s.Values)
	if n < 2 {
		return 0
	}
	m := s.Mean()
	ss := 0.0
	for _, v := range s.Values {
		d := v - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n))
}

// Min returns the minimum value; +Inf for an empty series.
func (s *Series) Min() float64 {
	min := math.Inf(1)
	for _, v := range s.Values {
		if v < min {
			min = v
		}
	}
	return min
}

// Max returns the maximum value; -Inf for an empty series.
func (s *Series) Max() float64 {
	max := math.Inf(-1)
	for _, v := range s.Values {
		if v > max {
			max = v
		}
	}
	return max
}

// Sum returns the sum of all sampled values.
func (s *Series) Sum() float64 {
	sum := 0.0
	for _, v := range s.Values {
		sum += v
	}
	return sum
}

// Quantile returns the q-th (0 ≤ q ≤ 1) quantile using linear
// interpolation between order statistics. It returns an error for an
// empty series or a q outside [0, 1].
func (s *Series) Quantile(q float64) (float64, error) {
	if len(s.Values) == 0 {
		return 0, errors.New("timeseries: quantile of empty series")
	}
	if q < 0 || q > 1 || math.IsNaN(q) {
		return 0, fmt.Errorf("timeseries: quantile %v out of [0,1]", q)
	}
	sorted := make([]float64, len(s.Values))
	copy(sorted, s.Values)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Median returns the 0.5 quantile, or 0 for an empty series.
func (s *Series) Median() float64 {
	m, err := s.Quantile(0.5)
	if err != nil {
		return 0
	}
	return m
}

// CountWithin reports how many values fall in [lo, hi] (inclusive).
func (s *Series) CountWithin(lo, hi float64) int {
	n := 0
	for _, v := range s.Values {
		if v >= lo && v <= hi {
			n++
		}
	}
	return n
}

// Normalize returns a copy rescaled to zero mean and unit standard
// deviation. A constant series is returned as all zeros.
func (s *Series) Normalize() *Series {
	out := s.Clone()
	m, sd := s.Mean(), s.Std()
	for i := range out.Values {
		if sd == 0 {
			out.Values[i] = 0
		} else {
			out.Values[i] = (out.Values[i] - m) / sd
		}
	}
	return out
}

// Scale returns a copy with every value multiplied by f.
func (s *Series) Scale(f float64) *Series {
	out := s.Clone()
	for i := range out.Values {
		out.Values[i] *= f
	}
	return out
}

// Resample returns a copy stretched or squeezed to exactly n samples by
// linear interpolation. It is used to simulate run-length
// nondeterminism, not for alignment (alignment uses DTW).
func (s *Series) Resample(n int) (*Series, error) {
	if n <= 0 {
		return nil, fmt.Errorf("timeseries: resample to %d samples", n)
	}
	if len(s.Values) == 0 {
		return nil, errors.New("timeseries: resample of empty series")
	}
	out := &Series{Event: s.Event, Values: make([]float64, n)}
	if len(s.Values) == 1 {
		for i := range out.Values {
			out.Values[i] = s.Values[0]
		}
		return out, nil
	}
	if n == 1 {
		out.Values[0] = s.Mean()
		return out, nil
	}
	step := float64(len(s.Values)-1) / float64(n-1)
	for i := 0; i < n; i++ {
		pos := float64(i) * step
		lo := int(math.Floor(pos))
		if lo >= len(s.Values)-1 {
			out.Values[i] = s.Values[len(s.Values)-1]
			continue
		}
		frac := pos - float64(lo)
		out.Values[i] = s.Values[lo]*(1-frac) + s.Values[lo+1]*frac
	}
	return out, nil
}

// ZeroRuns returns the [start, end) index ranges of maximal runs of
// exactly-zero values. The cleaner uses this to locate candidate missing
// values.
func (s *Series) ZeroRuns() [][2]int {
	var runs [][2]int
	start := -1
	for i, v := range s.Values {
		if v == 0 {
			if start < 0 {
				start = i
			}
		} else if start >= 0 {
			runs = append(runs, [2]int{start, i})
			start = -1
		}
	}
	if start >= 0 {
		runs = append(runs, [2]int{start, len(s.Values)})
	}
	return runs
}
