// Package rank implements CounterMiner's importance ranker (§III-C):
// it models IPC as a function of event values with SGBRT, quantifies
// each event's importance by Friedman relative influence (eq. (10) and
// (11), normalised to percentages), and refines the event set with EIR
// (Event Importance Refinement): iteratively drop the least important
// events and refit until the Most Accurate Performance Model (MAPM) is
// found. The importance ranking read off the MAPM is the paper's final
// answer.
package rank

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"counterminer/internal/sgbrt"
)

// DefaultPruneStep is how many events EIR drops per iteration (§III-C:
// "we remove the 10 least important events").
const DefaultPruneStep = 10

// DefaultTestFraction is the held-out share used to score each model
// (the paper uses one quarter of the training example count as unseen
// test examples).
const DefaultTestFraction = 0.25

// Options configures the ranker.
type Options struct {
	// Params configures the underlying SGBRT ensembles.
	Params sgbrt.Params
	// PruneStep is the number of events dropped per EIR iteration
	// (default 10).
	PruneStep int
	// TestFraction is the held-out fraction for model scoring (default
	// 0.25).
	TestFraction float64
	// MinEvents stops EIR when the event set would shrink below it
	// (default PruneStep, so the loop runs until no full prune is
	// possible).
	MinEvents int
	// Seed controls the train/test split shuffle.
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.PruneStep <= 0 {
		o.PruneStep = DefaultPruneStep
	}
	if o.TestFraction <= 0 || o.TestFraction >= 1 {
		o.TestFraction = DefaultTestFraction
	}
	if o.MinEvents <= 0 {
		o.MinEvents = o.PruneStep
	}
	return o
}

// EventImportance is one ranked event.
type EventImportance struct {
	// Event is the event name.
	Event string
	// Importance is the normalised relative influence in percent; the
	// sum over all events of a model is 100.
	Importance float64
}

// Model is one fitted performance model with its quality and ranking.
type Model struct {
	// Events are the input events, in the caller's column order.
	Events []string
	// Ensemble is the fitted SGBRT model.
	Ensemble *sgbrt.Ensemble
	// TestError is the eq. (14) relative IPC error on the held-out
	// split, in percent.
	TestError float64
	// Ranking lists events by descending importance.
	Ranking []EventImportance
}

// Fit trains one performance model for IPC = perf(e1, ..., en) and
// ranks the events. X has one row per interval and one column per
// event; y is the IPC series.
func Fit(X [][]float64, y []float64, events []string, opts Options) (*Model, error) {
	return FitCtx(context.Background(), X, y, events, opts)
}

// FitCtx is Fit with cooperative cancellation, inherited from the
// underlying sgbrt.FitCtx: a done context aborts between boosting
// stages and surfaces as ctx.Err().
func FitCtx(ctx context.Context, X [][]float64, y []float64, events []string, opts Options) (*Model, error) {
	if len(X) == 0 {
		return nil, errors.New("rank: empty training set")
	}
	if len(X[0]) != len(events) {
		return nil, fmt.Errorf("rank: %d columns but %d event names", len(X[0]), len(events))
	}
	opts = opts.withDefaults()

	trainX, trainY, testX, testY, err := split(X, y, opts.TestFraction, opts.Seed)
	if err != nil {
		return nil, err
	}
	ens, err := sgbrt.FitCtx(ctx, trainX, trainY, opts.Params)
	if err != nil {
		return nil, err
	}
	testErr, err := ens.MAPE(testX, testY)
	if err != nil {
		return nil, err
	}
	imp := ens.Importances()
	m := &Model{
		Events:    append([]string(nil), events...),
		Ensemble:  ens,
		TestError: testErr,
		Ranking:   make([]EventImportance, len(events)),
	}
	for i, ev := range events {
		m.Ranking[i] = EventImportance{Event: ev, Importance: imp[i]}
	}
	sort.SliceStable(m.Ranking, func(a, b int) bool {
		return m.Ranking[a].Importance > m.Ranking[b].Importance
	})
	return m, nil
}

// split shuffles row indices deterministically and carves off the test
// fraction.
func split(X [][]float64, y []float64, frac float64, seed int64) (trainX [][]float64, trainY []float64, testX [][]float64, testY []float64, err error) {
	n := len(X)
	if len(y) != n {
		return nil, nil, nil, nil, fmt.Errorf("rank: %d rows but %d targets", n, len(y))
	}
	nTest := int(float64(n) * frac)
	if nTest < 1 || n-nTest < 2 {
		return nil, nil, nil, nil, fmt.Errorf("rank: %d samples too few for a %.2f test split", n, frac)
	}
	idx := rand.New(rand.NewSource(seed)).Perm(n)
	for k, i := range idx {
		if k < nTest {
			testX = append(testX, X[i])
			testY = append(testY, y[i])
		} else {
			trainX = append(trainX, X[i])
			trainY = append(trainY, y[i])
		}
	}
	return trainX, trainY, testX, testY, nil
}

// EIRStep records one iteration of event importance refinement.
type EIRStep struct {
	// NumEvents is the input-event count of this step's model.
	NumEvents int
	// TestError is the model's held-out error in percent.
	TestError float64
	// Model is the fitted model of this step.
	Model *Model
}

// EIRResult is the outcome of the refinement loop.
type EIRResult struct {
	// Steps holds every iteration, in execution order (descending event
	// count).
	Steps []EIRStep
	// Best indexes the step with the lowest test error — the MAPM.
	Best int
}

// MAPM returns the most accurate performance model found.
func (r *EIRResult) MAPM() *Model { return r.Steps[r.Best].Model }

// Curve returns (numEvents, testError) pairs for plotting Fig. 8.
func (r *EIRResult) Curve() ([]int, []float64) {
	ns := make([]int, len(r.Steps))
	es := make([]float64, len(r.Steps))
	for i, s := range r.Steps {
		ns[i] = s.NumEvents
		es[i] = s.TestError
	}
	return ns, es
}

// EIR runs the refinement loop: fit a model on all events, rank, drop
// the PruneStep least-important events, refit, and repeat while at
// least MinEvents remain. It returns every step plus the MAPM.
func EIR(X [][]float64, y []float64, events []string, opts Options) (*EIRResult, error) {
	return EIRCtx(context.Background(), X, y, events, opts)
}

// EIRCtx is EIR with cooperative cancellation: the refinement loop
// checks the context between prune rounds (and each fit aborts between
// boosting stages), so a done context surfaces as ctx.Err() within one
// round of work.
func EIRCtx(ctx context.Context, X [][]float64, y []float64, events []string, opts Options) (*EIRResult, error) {
	opts = opts.withDefaults()
	if len(events) == 0 {
		return nil, errors.New("rank: EIR with no events")
	}
	cur := append([]string(nil), events...)
	colIdx := make(map[string]int, len(events))
	for i, ev := range events {
		colIdx[ev] = i
	}

	res := &EIRResult{}
	for len(cur) >= opts.MinEvents {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		subX, err := columns(X, cur, colIdx)
		if err != nil {
			return nil, err
		}
		m, err := FitCtx(ctx, subX, y, cur, opts)
		if err != nil {
			return nil, err
		}
		res.Steps = append(res.Steps, EIRStep{
			NumEvents: len(cur),
			TestError: m.TestError,
			Model:     m,
		})
		if len(cur)-opts.PruneStep < opts.MinEvents {
			break
		}
		// Drop the PruneStep least important events.
		keep := make(map[string]bool, len(cur)-opts.PruneStep)
		for _, ei := range m.Ranking[:len(cur)-opts.PruneStep] {
			keep[ei.Event] = true
		}
		next := cur[:0]
		for _, ev := range cur {
			if keep[ev] {
				next = append(next, ev)
			}
		}
		cur = next
	}
	if len(res.Steps) == 0 {
		return nil, fmt.Errorf("rank: EIR produced no steps (events=%d, min=%d)", len(events), opts.MinEvents)
	}
	for i, s := range res.Steps {
		if s.TestError < res.Steps[res.Best].TestError {
			res.Best = i
		}
	}
	return res, nil
}

// columns extracts the named columns of X (by the original column
// index map) into a new matrix.
func columns(X [][]float64, events []string, colIdx map[string]int) ([][]float64, error) {
	cols := make([]int, len(events))
	for j, ev := range events {
		i, ok := colIdx[ev]
		if !ok {
			return nil, fmt.Errorf("rank: event %q not in original matrix", ev)
		}
		cols[j] = i
	}
	out := make([][]float64, len(X))
	for r, row := range X {
		sub := make([]float64, len(cols))
		for j, c := range cols {
			sub[j] = row[c]
		}
		out[r] = sub
	}
	return out, nil
}

// TopK returns the k most important events of the model (fewer if the
// model has fewer events).
func (m *Model) TopK(k int) []EventImportance {
	if k > len(m.Ranking) {
		k = len(m.Ranking)
	}
	return append([]EventImportance(nil), m.Ranking[:k]...)
}

// SMICount reports how many of the top three events are "significantly
// more important": their importance exceeds ratio times the
// fourth-ranked importance. The paper's one–three SMI law says this is
// 1 to 3 for every benchmark.
func (m *Model) SMICount(ratio float64) int {
	if len(m.Ranking) < 4 {
		return len(m.Ranking)
	}
	cutoff := m.Ranking[3].Importance * ratio
	n := 0
	for _, ei := range m.Ranking[:3] {
		if ei.Importance > cutoff {
			n++
		}
	}
	return n
}
