package sgbrt

import (
	"math"
	"math/rand"
	"testing"
)

// friedmanData generates the classic Friedman #1 benchmark function
// with nNoise additional pure-noise features.
func friedmanData(rng *rand.Rand, n, nNoise int) ([][]float64, []float64) {
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		row := make([]float64, 5+nNoise)
		for j := range row {
			row[j] = rng.Float64()
		}
		X[i] = row
		y[i] = 10*math.Sin(math.Pi*row[0]*row[1]) +
			20*(row[2]-0.5)*(row[2]-0.5) +
			10*row[3] + 5*row[4] + rng.NormFloat64()*0.5
	}
	return X, y
}

func TestEnsembleBeatsMeanBaseline(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	X, y := friedmanData(rng, 800, 3)
	Xtest, ytest := friedmanData(rng, 200, 3)

	e, err := Fit(X, y, Params{Trees: 150, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	pred, err := e.PredictAll(Xtest)
	if err != nil {
		t.Fatal(err)
	}
	mean := 0.0
	for _, v := range y {
		mean += v
	}
	mean /= float64(len(y))

	sseModel, sseMean := 0.0, 0.0
	for i := range ytest {
		dm := ytest[i] - pred[i]
		db := ytest[i] - mean
		sseModel += dm * dm
		sseMean += db * db
	}
	if sseModel > sseMean/4 {
		t.Errorf("model SSE %v not ≪ baseline SSE %v", sseModel, sseMean)
	}
}

func TestEnsembleDeterministicWithSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	X, y := friedmanData(rng, 200, 2)
	e1, err := Fit(X, y, Params{Trees: 30, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	e2, err := Fit(X, y, Params{Trees: 30, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		p1, _ := e1.Predict(X[i])
		p2, _ := e2.Predict(X[i])
		if p1 != p2 {
			t.Fatalf("same seed, different predictions: %v vs %v", p1, p2)
		}
	}
}

func TestImportancesIdentifyRelevantFeatures(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	X, y := friedmanData(rng, 1000, 5) // features 0-4 relevant, 5-9 noise
	e, err := Fit(X, y, Params{Trees: 150, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	imp := e.Importances()
	if len(imp) != 10 {
		t.Fatalf("importances length = %d", len(imp))
	}
	total := 0.0
	relevant, noise := 0.0, 0.0
	for j, v := range imp {
		total += v
		if v < 0 {
			t.Errorf("negative importance %v at %d", v, j)
		}
		if j < 5 {
			relevant += v
		} else {
			noise += v
		}
	}
	if !approx(total, 100, 1e-6) {
		t.Errorf("importances sum = %v, want 100", total)
	}
	if relevant < 90 {
		t.Errorf("relevant features hold %v%% importance, want > 90%%", relevant)
	}
	_ = noise
}

func TestImportancesEmptyEnsemble(t *testing.T) {
	e := &Ensemble{nFeatures: 3}
	imp := e.Importances()
	for _, v := range imp {
		if v != 0 {
			t.Errorf("empty ensemble importance = %v", imp)
		}
	}
}

func TestMAPE(t *testing.T) {
	X := [][]float64{{1}, {2}, {3}, {4}, {5}, {6}, {7}, {8}}
	y := []float64{10, 10, 10, 10, 20, 20, 20, 20}
	e, err := Fit(X, y, Params{Trees: 50, Subsample: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	mape, err := e.MAPE(X, y)
	if err != nil {
		t.Fatal(err)
	}
	if mape > 5 {
		t.Errorf("in-sample MAPE = %v%%, want small", mape)
	}
	// All-zero targets are undefined.
	if _, err := e.MAPE([][]float64{{1}}, []float64{0}); err == nil {
		t.Error("MAPE with all-zero targets should error")
	}
	if _, err := e.MAPE(X, y[:2]); err == nil {
		t.Error("MAPE with length mismatch should error")
	}
}

func TestFitValidation(t *testing.T) {
	if _, err := Fit(nil, nil, Params{}); err == nil {
		t.Error("empty should error")
	}
	if _, err := Fit([][]float64{{1}}, []float64{1, 2}, Params{}); err == nil {
		t.Error("mismatch should error")
	}
	if _, err := Fit([][]float64{{1}, {2, 3}}, []float64{1, 2}, Params{}); err == nil {
		t.Error("ragged should error")
	}
	if _, err := Fit([][]float64{{math.NaN()}}, []float64{1}, Params{}); err == nil {
		t.Error("NaN input should error")
	}
	if _, err := Fit([][]float64{{math.Inf(1)}}, []float64{1}, Params{}); err == nil {
		t.Error("Inf input should error")
	}
}

func TestPredictValidation(t *testing.T) {
	X := [][]float64{{1, 2}, {3, 4}, {5, 6}, {7, 8}}
	y := []float64{1, 2, 3, 4}
	e, err := Fit(X, y, Params{Trees: 5, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Predict([]float64{1}); err == nil {
		t.Error("dimension mismatch should error")
	}
	if e.NumTrees() != 5 {
		t.Errorf("NumTrees = %d", e.NumTrees())
	}
	if e.NumFeatures() != 2 {
		t.Errorf("NumFeatures = %d", e.NumFeatures())
	}
}

func TestMoreTreesReduceTrainingError(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	X, y := friedmanData(rng, 400, 2)
	small, err := Fit(X, y, Params{Trees: 10, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	large, err := Fit(X, y, Params{Trees: 200, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	mSmall, _ := small.MAPE(X, y)
	mLarge, _ := large.MAPE(X, y)
	if mLarge >= mSmall {
		t.Errorf("200-tree MAPE %v >= 10-tree MAPE %v", mLarge, mSmall)
	}
}

func TestDefaultsApplied(t *testing.T) {
	p := Params{}.withDefaults()
	if p.Trees != 200 || p.LearningRate != 0.1 || p.Subsample != 0.7 || p.MaxDepth != 3 || p.MinLeaf != 1 {
		t.Errorf("defaults = %+v", p)
	}
	p = Params{Subsample: 1.5}.withDefaults()
	if p.Subsample != 0.7 {
		t.Errorf("out-of-range subsample not defaulted: %v", p.Subsample)
	}
}

func TestColSampleStillLearns(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	X, y := friedmanData(rng, 600, 3)
	full, err := Fit(X, y, Params{Trees: 120, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	sub, err := Fit(X, y, Params{Trees: 120, ColSample: 0.5, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	mFull, _ := full.MAPE(X, y)
	mSub, _ := sub.MAPE(X, y)
	// Column subsampling regularises; training error may rise but must
	// stay in the same ballpark (the model still learns).
	if mSub > 3*mFull+5 {
		t.Errorf("ColSample training MAPE %v far above full %v", mSub, mFull)
	}
	// Importances still favour the relevant features.
	imp := sub.Importances()
	relevant := 0.0
	for j := 0; j < 5; j++ {
		relevant += imp[j]
	}
	if relevant < 75 {
		t.Errorf("relevant importance share = %v%% with ColSample", relevant)
	}
}

func TestColSampleTinyFractionClamps(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	X, y := friedmanData(rng, 100, 0)
	// A fraction so small it rounds to zero columns must clamp to one.
	e, err := Fit(X, y, Params{Trees: 10, ColSample: 0.01, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if e.NumTrees() != 10 {
		t.Errorf("trees = %d", e.NumTrees())
	}
}
