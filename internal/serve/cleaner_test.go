package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	counterminer "counterminer"
	"counterminer/internal/clean"
)

// --- content-address separation --------------------------------------------

func TestCleanerKeyCanonicalization(t *testing.T) {
	base := Key("wordcount", "", nil, counterminer.Options{})
	explicit := counterminer.Options{}
	explicit.CleanOptions.Cleaner = clean.DefaultCleaner
	if got := Key("wordcount", "", nil, explicit); got != base {
		t.Error("empty cleaner and explicit default name must collide")
	}
	bayes := counterminer.Options{}
	bayes.CleanOptions.Cleaner = "bayes"
	if got := Key("wordcount", "", nil, bayes); got == base {
		t.Error("distinct cleaners must never share a content address")
	}
}

// TestCleanerCacheKeySeparation drives two identical profiles through
// the serving layer under the two cleaners and proves they never share
// a result: distinct executions, distinct LRU entries, and repeat
// requests hitting only their own cleaner's cache line.
func TestCleanerCacheKeySeparation(t *testing.T) {
	s, g := newGatedServer(t, Config{Workers: 2, QueueDepth: 4, CacheSize: 8})
	close(g.release) // executions complete immediately
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.queue.Drain()

	post := func(body string) {
		t.Helper()
		resp, b := postAnalyze(t, ts.URL, body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST %s: status %d: %s", body, resp.StatusCode, b)
		}
	}
	post(`{"benchmark":"wordcount","skip_eir":true}`)
	post(`{"benchmark":"wordcount","skip_eir":true,"cleaner":"bayes"}`)
	if got := g.count.Load(); got != 2 {
		t.Fatalf("executions = %d, want 2 (the bayes request must not ride the default's singleflight or cache)", got)
	}
	if got := s.cache.Len(); got != 2 {
		t.Fatalf("cache entries = %d, want 2 (one per cleaner)", got)
	}

	// Repeats — including the explicit default name, which canonicalizes
	// onto the empty-cleaner request — are pure cache hits.
	post(`{"benchmark":"wordcount","skip_eir":true,"cleaner":"threshold-knn"}`)
	post(`{"benchmark":"wordcount","skip_eir":true,"cleaner":"bayes"}`)
	if got := g.count.Load(); got != 2 {
		t.Fatalf("executions after repeats = %d, want 2", got)
	}
	snap := s.metrics.SnapshotFrom(gauges{})
	if snap.Requests.CacheHits != 2 {
		t.Errorf("cache hits = %d, want 2", snap.Requests.CacheHits)
	}
	if snap.Requests.SingleflightShared != 0 {
		t.Errorf("singleflight shared = %d, want 0", snap.Requests.SingleflightShared)
	}
}

// --- HTTP rejection --------------------------------------------------------

func TestUnknownCleanerRejected404(t *testing.T) {
	s, g := newGatedServer(t, Config{Workers: 1, QueueDepth: 2, CacheSize: 2})
	close(g.release)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.queue.Drain()

	resp, body := postAnalyze(t, ts.URL, `{"benchmark":"wordcount","cleaner":"nope"}`)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404: %s", resp.StatusCode, body)
	}
	var er ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if er.Error != "unknown_cleaner" {
		t.Errorf("error code = %q, want unknown_cleaner", er.Error)
	}
	for _, want := range []string{`"nope"`, "bayes", "threshold-knn"} {
		if !strings.Contains(er.Message, want) {
			t.Errorf("message %q missing %q", er.Message, want)
		}
	}
	if got := g.count.Load(); got != 0 {
		t.Errorf("executions = %d, want 0 (rejected before admission)", got)
	}
}

func TestServerRejectsUnknownDefaultCleaner(t *testing.T) {
	if _, err := New(Config{DefaultCleaner: "nope"}); err == nil {
		t.Fatal("New with unknown DefaultCleaner should fail")
	} else if !strings.Contains(err.Error(), "unknown cleaner") {
		t.Errorf("error = %v, want unknown-cleaner detail", err)
	}
}

// TestServerDefaultCleanerFlowsIntoKey proves the config-level default
// participates in the content address: a server defaulting to bayes
// must not serve results cached under the threshold cleaner.
func TestServerDefaultCleanerFlowsIntoKey(t *testing.T) {
	s, g := newGatedServer(t, Config{Workers: 2, QueueDepth: 4, CacheSize: 8, DefaultCleaner: "bayes"})
	close(g.release)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.queue.Drain()

	for _, body := range []string{
		`{"benchmark":"wordcount","skip_eir":true}`,                   // → bayes via config default
		`{"benchmark":"wordcount","skip_eir":true,"cleaner":"bayes"}`, // same address
	} {
		resp, b := postAnalyze(t, ts.URL, body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST %s: status %d: %s", body, resp.StatusCode, b)
		}
	}
	if got := g.count.Load(); got != 1 {
		t.Errorf("executions = %d, want 1 (default resolves to bayes before keying)", got)
	}
}

// --- per-cleaner metrics ---------------------------------------------------

func TestCleanerMetricsPreRegisteredAndObserved(t *testing.T) {
	m := NewMetrics()
	snap := m.SnapshotFrom(gauges{})
	names := clean.Names()
	if len(snap.Cleaners) != len(names) {
		t.Fatalf("cleaner series = %d, want %d (pre-registered registry)", len(snap.Cleaners), len(names))
	}
	for i, cc := range snap.Cleaners {
		if cc.Cleaner != names[i] {
			t.Errorf("cleaner %d = %q, want registry order %q", i, cc.Cleaner, names[i])
		}
		if cc.Analyses != 0 || cc.CleanLatency.Count != 0 {
			t.Errorf("cleaner %q not zeroed: %+v", cc.Cleaner, cc)
		}
	}

	m.ObserveAnalysis(&counterminer.Analysis{
		Cleaner:          "bayes",
		OutliersReplaced: 3,
		MissingFilled:    2,
		Stages: []counterminer.StageTiming{
			{Stage: counterminer.StageClean, Duration: 3 * time.Millisecond},
			{Stage: counterminer.StageRank, Duration: 90 * time.Millisecond},
		},
	}, nil)
	snap = m.SnapshotFrom(gauges{})
	var bayes *CleanerCounters
	for i := range snap.Cleaners {
		if snap.Cleaners[i].Cleaner == "bayes" {
			bayes = &snap.Cleaners[i]
		}
	}
	if bayes == nil {
		t.Fatal("bayes series missing")
	}
	if bayes.Analyses != 1 || bayes.OutliersReplaced != 3 || bayes.MissingFilled != 2 {
		t.Errorf("bayes counters = %+v", bayes)
	}
	if bayes.CleanLatency.Count != 1 {
		t.Errorf("bayes clean latency count = %d, want 1 (only the Clean stage feeds it)", bayes.CleanLatency.Count)
	}
}

// TestCleanerSurvivesJobWire proves the wire Job round-trips the
// cleaner name: Execute recomputes the content address locally, so a
// Job stripped of its cleaner would silently re-key onto the default.
func TestCleanerSurvivesJobWire(t *testing.T) {
	var opts counterminer.Options
	opts.CleanOptions.Cleaner = "bayes"
	spec := jobSpec{benchmark: "wordcount", opts: opts}
	key := Key(spec.benchmark, spec.colocate, spec.events, spec.opts)
	j := jobFromSpec(key, spec)
	if j.Cleaner != "bayes" {
		t.Fatalf("wire cleaner = %q, want bayes", j.Cleaner)
	}
	b, err := json.Marshal(j)
	if err != nil {
		t.Fatal(err)
	}
	var back Job
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.queue.Drain()
	rebuilt := s.specFromJob(back)
	if got := Key(rebuilt.benchmark, rebuilt.colocate, rebuilt.events, rebuilt.opts); got != key {
		t.Errorf("re-dispatched job re-keyed: %s != %s", got, key)
	}
}
