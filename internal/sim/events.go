// Package sim is CounterMiner's hardware substitute. The paper profiles
// a 4-node Haswell-E cluster (Intel Xeon E5-2630 v3) with Linux perf;
// this package replaces that substrate with a deterministic simulation:
//
//   - a catalogue of 229 microarchitecture events (the count the paper
//     reports for its processors), ~100 with Gaussian value
//     distributions and ~129 with GEV long-tail distributions, matching
//     the paper's census in §III-B;
//   - 16 workload profiles mirroring the 8 HiBench/Spark and
//     8 CloudSuite benchmarks, each with a ground-truth nonlinear IPC
//     response surface (per-event penalties plus pairwise interaction
//     terms);
//   - a PMU model with 3 fixed and 4 programmable counters per core;
//   - per-interval trace generation with phase structure (cold-start
//     bursts, periodic phases, heavy-tail spikes) and OS
//     nondeterminism (run-length jitter);
//   - workload co-location (shared-cluster contention, §V-E).
//
// Downstream packages (collector, mlpx, clean, rank, interact) only see
// time-series data, so swapping this simulation for real perf output
// requires no changes above the collector.
package sim

import (
	"errors"
	"fmt"
	"path"
	"sort"
)

// DistKind classifies an event's value distribution, per the census of
// §III-B (100 Gaussian events, 129 long-tail/GEV events).
type DistKind int

const (
	// DistGaussian events have symmetric, light-tailed values.
	DistGaussian DistKind = iota
	// DistGEV events have long-tail values with occasional bursts.
	DistGEV
)

func (d DistKind) String() string {
	if d == DistGaussian {
		return "gaussian"
	}
	return "gev"
}

// Event describes one countable microarchitecture event.
type Event struct {
	// Name is the full perf-style event name, e.g. "ICACHE.MISSES".
	Name string
	// Abbrev is the three-letter code used in the paper's figures.
	Abbrev string
	// Desc is a human-readable description.
	Desc string
	// Dist is the event's value-distribution family.
	Dist DistKind
	// Scale is the typical magnitude of per-interval values.
	Scale float64
	// Burstiness in [0, 1] controls how unevenly the event's activity
	// is spread inside a sampling interval; bursty events suffer the
	// worst multiplexing errors.
	Burstiness float64
	// ColdStart marks events with a large transient at program start
	// (e.g. instruction cache misses on a cold cache).
	ColdStart bool
}

// namedEvents is the catalogue of events that appear by abbreviation in
// the paper's figures (Table III) plus the two events discussed in
// Fig. 2. Descriptions follow the paper where it gives them.
var namedEvents = []Event{
	{Name: "RS_EVENTS.IQ_FULL_STALL", Abbrev: "ISF", Desc: "stall cycles due to instruction queue full", Dist: DistGaussian, Scale: 42, Burstiness: 0.35},
	{Name: "BR_INST_EXEC.ALL", Abbrev: "BRE", Desc: "branch instructions executed", Dist: DistGaussian, Scale: 38, Burstiness: 0.30},
	{Name: "BR_INST_RETIRED.ALL", Abbrev: "BRB", Desc: "successfully retired branch instructions", Dist: DistGaussian, Scale: 36, Burstiness: 0.30},
	{Name: "BR_MISP_RETIRED.ALL", Abbrev: "BMP", Desc: "mispredicted but finally retired branch instructions", Dist: DistGEV, Scale: 12, Burstiness: 0.55},
	{Name: "BR_INST_RETIRED.CONDITIONAL", Abbrev: "BRC", Desc: "retired conditional branch instructions", Dist: DistGaussian, Scale: 22, Burstiness: 0.35},
	{Name: "BR_INST_RETIRED.NOT_TAKEN", Abbrev: "BNT", Desc: "retired not-taken branch instructions", Dist: DistGaussian, Scale: 18, Burstiness: 0.30},
	{Name: "OFFCORE_REQUESTS.REMOTE_ACCESS", Abbrev: "ORA", Desc: "offcore remote memory accesses", Dist: DistGEV, Scale: 9, Burstiness: 0.65},
	{Name: "OFFCORE_REQUESTS.OUTSTANDING", Abbrev: "ORO", Desc: "outstanding offcore requests per cycle", Dist: DistGEV, Scale: 11, Burstiness: 0.60},
	{Name: "UNC_REMOTE_READS", Abbrev: "URA", Desc: "uncore remote DRAM reads", Dist: DistGEV, Scale: 7, Burstiness: 0.70},
	{Name: "UNC_REMOTE_SNOOPS", Abbrev: "URS", Desc: "uncore remote cache snoops", Dist: DistGEV, Scale: 6, Burstiness: 0.70},
	{Name: "ITLB_MISSES.WALK_COMPLETED", Abbrev: "ITM", Desc: "instruction TLB misses with completed page walk", Dist: DistGEV, Scale: 5, Burstiness: 0.60},
	{Name: "ITLB_MISSES.WALK_DURATION", Abbrev: "IPD", Desc: "cycles spent in instruction TLB page walks", Dist: DistGEV, Scale: 8, Burstiness: 0.55},
	{Name: "CYCLE_ACTIVITY.STALLS_MEM_ANY", Abbrev: "MSL", Desc: "stall cycles due to outstanding memory loads", Dist: DistGaussian, Scale: 30, Burstiness: 0.40},
	{Name: "MEM_LOAD_UOPS_RETIRED.L2_HIT", Abbrev: "LMH", Desc: "retired load uops hitting in L2", Dist: DistGaussian, Scale: 20, Burstiness: 0.40},
	{Name: "MEM_LOAD_UOPS_RETIRED.MISS", Abbrev: "MMR", Desc: "retired load uops missing the cache hierarchy", Dist: DistGEV, Scale: 10, Burstiness: 0.60},
	{Name: "DTLB_STORE_MISSES.STLB_HIT", Abbrev: "PI3", Desc: "second-level TLB hits after DTLB store misses", Dist: DistGEV, Scale: 6, Burstiness: 0.55},
	{Name: "MACHINE_CLEARS.MEMORY_ORDERING", Abbrev: "MCO", Desc: "machine clears from memory ordering conflicts", Dist: DistGEV, Scale: 3, Burstiness: 0.75},
	{Name: "DTLB_LOAD_MISSES.WALK_COMPLETED", Abbrev: "TFA", Desc: "data TLB misses with completed page walk", Dist: DistGEV, Scale: 5, Burstiness: 0.60},
	{Name: "BACLEARS.ANY", Abbrev: "BAA", Desc: "front-end re-steers from branch address clears", Dist: DistGEV, Scale: 4, Burstiness: 0.65},
	{Name: "OFFCORE_RESPONSE.REMOTE_CACHE", Abbrev: "LRC", Desc: "loads served from a remote cache", Dist: DistGEV, Scale: 7, Burstiness: 0.65},
	{Name: "ICACHE.MISSES", Abbrev: "IMC", Desc: "instruction cache misses per 1K instructions", Dist: DistGEV, Scale: 14, Burstiness: 0.70, ColdStart: true},
	{Name: "ICACHE.IFETCH_STALL", Abbrev: "IM4", Desc: "cycles stalled on instruction fetch", Dist: DistGEV, Scale: 9, Burstiness: 0.55},
	{Name: "L1D.REPLACEMENT", Abbrev: "CAC", Desc: "L1 data cache line replacements", Dist: DistGaussian, Scale: 16, Burstiness: 0.45},
	{Name: "IDQ.DSB_UOPS", Abbrev: "IDU", Desc: "uops delivered to IDQ from the Decode Stream Buffer", Dist: DistGEV, Scale: 25, Burstiness: 0.50},
	{Name: "MEM_LOAD_UOPS.REMOTE_HITM", Abbrev: "LRA", Desc: "loads hitting modified lines in a remote cache", Dist: DistGEV, Scale: 5, Burstiness: 0.70},
	{Name: "OFFCORE_REQUESTS.ALL_SNOOPS", Abbrev: "OTS", Desc: "all offcore snoop transactions", Dist: DistGEV, Scale: 6, Burstiness: 0.60},
	{Name: "MEM_UOPS_RETIRED.ALL_LOADS", Abbrev: "MUL", Desc: "all retired memory load uops", Dist: DistGaussian, Scale: 34, Burstiness: 0.35},
	{Name: "MEM_UOPS_RETIRED.LOCAL_LOADS", Abbrev: "MLL", Desc: "retired loads served from local DRAM", Dist: DistGaussian, Scale: 26, Burstiness: 0.40},
	{Name: "DEMAND_SNOOP.PROBE", Abbrev: "DSP", Desc: "demand snoop probes from other sockets", Dist: DistGEV, Scale: 5, Burstiness: 0.65},
	{Name: "DEMAND_SNOOP.HIT", Abbrev: "DSH", Desc: "demand snoop probes hitting this core's caches", Dist: DistGEV, Scale: 4, Burstiness: 0.65},
	{Name: "CYCLE_ACTIVITY.STALLS_TOTAL", Abbrev: "MST", Desc: "total execution stall cycles", Dist: DistGaussian, Scale: 44, Burstiness: 0.30},
	{Name: "MACHINE_CLEARS.IRQ", Abbrev: "MIE", Desc: "machine clears from interrupt events", Dist: DistGEV, Scale: 2, Burstiness: 0.75},
	{Name: "ITLB.ITLB_FLUSH", Abbrev: "IMT", Desc: "instruction TLB flushes", Dist: DistGEV, Scale: 3, Burstiness: 0.70},
	{Name: "MEM_LOAD_UOPS.REMOTE_HIT_FWD", Abbrev: "LHN", Desc: "loads forwarded from a remote NUMA node", Dist: DistGEV, Scale: 4, Burstiness: 0.70},
	{Name: "ILD_STALL.LCP", Abbrev: "ISL", Desc: "instruction length decoder stalls", Dist: DistGaussian, Scale: 8, Burstiness: 0.40},
	{Name: "OFFCORE_REQUESTS.CROSS_SOCKET", Abbrev: "CRX", Desc: "requests crossing the socket interconnect", Dist: DistGEV, Scale: 5, Burstiness: 0.65},
	{Name: "IDQ.ALL_DSB_CYCLES_4_UOPS", Abbrev: "I4U", Desc: "cycles the DSB delivered four uops", Dist: DistGaussian, Scale: 15, Burstiness: 0.35},
	{Name: "L2_RQSTS.DEMAND_DATA_RD_HIT", Abbrev: "L2H", Desc: "L2 demand data read hits", Dist: DistGaussian, Scale: 18, Burstiness: 0.45},
	{Name: "L2_RQSTS.ALL_DEMAND_DATA_RD", Abbrev: "L2R", Desc: "all L2 demand data reads", Dist: DistGaussian, Scale: 20, Burstiness: 0.45},
	{Name: "L2_RQSTS.CODE_RD_MISS", Abbrev: "L2C", Desc: "L2 code read misses", Dist: DistGEV, Scale: 8, Burstiness: 0.60},
	{Name: "L2_RQSTS.REFERENCES", Abbrev: "L2A", Desc: "all L2 cache references", Dist: DistGaussian, Scale: 24, Burstiness: 0.40},
	{Name: "L2_RQSTS.MISS", Abbrev: "L2M", Desc: "all L2 cache misses", Dist: DistGEV, Scale: 10, Burstiness: 0.55},
	{Name: "L2_RQSTS.SNOOP_HIT", Abbrev: "L2S", Desc: "L2 snoop hits", Dist: DistGEV, Scale: 6, Burstiness: 0.60},
}

// Catalogue is the full event list of the simulated processor: the
// named events above padded with generated events up to NumEvents. The
// split between Gaussian and GEV families matches the paper's census
// (100 Gaussian / 129 GEV over 229 events).
type Catalogue struct {
	events  []Event
	byName  map[string]int
	byAbbr  map[string]int
	fixed   []Event // fixed-counter events (cycles, instructions, ...)
	ordered []string
}

// NumEvents is the measurable-event count of the simulated processor,
// matching the 229 events the paper reports for its Haswell-E parts.
const NumEvents = 229

// NumGaussianEvents is how many of the 229 events follow a Gaussian
// value distribution per the paper's census.
const NumGaussianEvents = 100

// NewCatalogue builds the 229-event catalogue. The generated filler
// events (those beyond the named ones) are deterministic: the same
// catalogue is produced on every call.
func NewCatalogue() *Catalogue {
	c := &Catalogue{
		byName: make(map[string]int),
		byAbbr: make(map[string]int),
	}
	gaussians := 0
	for _, e := range namedEvents {
		if e.Dist == DistGaussian {
			gaussians++
		}
	}
	c.events = append(c.events, namedEvents...)

	// Pad with generated events. Keep the census ratio: exactly
	// NumGaussianEvents Gaussian events overall.
	needGauss := NumGaussianEvents - gaussians
	i := 0
	for len(c.events) < NumEvents {
		i++
		ev := Event{
			Name:   fmt.Sprintf("UNC_MISC.EVENT_%03d", i),
			Abbrev: fmt.Sprintf("U%02d", i),
			Desc:   fmt.Sprintf("uncore miscellaneous event %d", i),
		}
		if needGauss > 0 {
			ev.Dist = DistGaussian
			ev.Scale = 2 + float64(i%7)
			ev.Burstiness = 0.2 + 0.05*float64(i%5)
			needGauss--
		} else {
			ev.Dist = DistGEV
			ev.Scale = 1 + float64(i%5)
			ev.Burstiness = 0.5 + 0.05*float64(i%8)
		}
		c.events = append(c.events, ev)
	}

	for idx, e := range c.events {
		c.byName[e.Name] = idx
		c.byAbbr[e.Abbrev] = idx
		c.ordered = append(c.ordered, e.Name)
	}
	c.fixed = []Event{
		{Name: "CPU_CLK_UNHALTED.THREAD", Abbrev: "CYC", Desc: "core clock cycles (fixed counter)", Dist: DistGaussian, Scale: 100},
		{Name: "INST_RETIRED.ANY", Abbrev: "INS", Desc: "retired instructions (fixed counter)", Dist: DistGaussian, Scale: 100},
		{Name: "CPU_CLK_UNHALTED.REF_TSC", Abbrev: "REF", Desc: "reference clock cycles (fixed counter)", Dist: DistGaussian, Scale: 100},
	}
	return c
}

// Len reports the number of programmable (non-fixed) events.
func (c *Catalogue) Len() int { return len(c.events) }

// Events returns the catalogue's event names in catalogue order.
func (c *Catalogue) Events() []string {
	return append([]string(nil), c.ordered...)
}

// Fixed returns the fixed-counter events.
func (c *Catalogue) Fixed() []Event {
	return append([]Event(nil), c.fixed...)
}

// ByName returns the event with the given full name.
func (c *Catalogue) ByName(name string) (Event, bool) {
	i, ok := c.byName[name]
	if !ok {
		return Event{}, false
	}
	return c.events[i], true
}

// ByAbbrev returns the event with the given figure abbreviation.
func (c *Catalogue) ByAbbrev(abbr string) (Event, bool) {
	i, ok := c.byAbbr[abbr]
	if !ok {
		return Event{}, false
	}
	return c.events[i], true
}

// Index returns the catalogue index of the named event, or -1.
func (c *Catalogue) Index(name string) int {
	i, ok := c.byName[name]
	if !ok {
		return -1
	}
	return i
}

// At returns the event at catalogue index i.
func (c *Catalogue) At(i int) Event { return c.events[i] }

// NamedAbbrevs returns the abbreviations of all named (non-filler)
// events, sorted.
func (c *Catalogue) NamedAbbrevs() []string {
	out := make([]string, 0, len(namedEvents))
	for _, e := range namedEvents {
		out = append(out, e.Abbrev)
	}
	sort.Strings(out)
	return out
}

// DistCensus returns how many catalogue events fall in each
// distribution family.
func (c *Catalogue) DistCensus() (gaussian, gev int) {
	for _, e := range c.events {
		if e.Dist == DistGaussian {
			gaussian++
		} else {
			gev++
		}
	}
	return gaussian, gev
}

// Select returns the catalogue events matching any of the given
// patterns, in catalogue order. A pattern matches event names with
// path.Match-style globbing ("L2_RQSTS.*", "BR_*", "ICACHE.MISSES") and
// also matches an exact abbreviation ("ISF"). Unknown patterns that
// match nothing cause an error, so typos are caught early.
func (c *Catalogue) Select(patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		return nil, errors.New("sim: no event patterns")
	}
	seen := make(map[string]bool)
	var out []string
	for _, pat := range patterns {
		matched := false
		// Exact abbreviation?
		if ev, ok := c.ByAbbrev(pat); ok {
			if !seen[ev.Name] {
				seen[ev.Name] = true
				out = append(out, ev.Name)
			}
			matched = true
		}
		for _, name := range c.ordered {
			ok, err := path.Match(pat, name)
			if err != nil {
				return nil, fmt.Errorf("sim: bad pattern %q: %w", pat, err)
			}
			if ok {
				matched = true
				if !seen[name] {
					seen[name] = true
					out = append(out, name)
				}
			}
		}
		if !matched {
			return nil, fmt.Errorf("sim: pattern %q matches no event", pat)
		}
	}
	// Restore catalogue order.
	ordered := make([]string, 0, len(out))
	for _, name := range c.ordered {
		if seen[name] {
			ordered = append(ordered, name)
		}
	}
	return ordered, nil
}
