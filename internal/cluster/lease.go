package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// Lease is one grant of the coordinator leadership: who holds it, the
// monotonically increasing term it was granted under, and when it
// lapses unless renewed. Terms are the fencing token — every grant
// bumps the term, and workers reject writes from terms below the
// highest they have seen, so an expired leader that never noticed its
// own expiry cannot corrupt anything.
type Lease struct {
	Owner  NodeID    `json:"owner"`
	Term   uint64    `json:"term"`
	Expiry time.Time `json:"expiry"`
}

// ExpiredAt reports whether the lease has lapsed at now.
func (l Lease) ExpiredAt(now time.Time) bool { return !now.Before(l.Expiry) }

// LeaseStore is the shared arbiter coordinators elect through. All
// operations are compare-and-swap shaped and take the caller's clock,
// so election logic is testable without wall-clock races.
//
// Implementations: MemoryLease (in-process, for tests and single-
// binary clusters) and FileLease (a lease file on a filesystem shared
// by the coordinators — the localhost quickstart).
type LeaseStore interface {
	// TryAcquire takes the lease iff it is unheld, expired at now, or
	// already owned by the caller. A fresh grant increments the term; a
	// re-acquire by the current valid owner extends the expiry at the
	// same term. Returns the resulting (or blocking) lease and whether
	// the caller holds it.
	TryAcquire(owner NodeID, now time.Time, ttl time.Duration) (Lease, bool, error)
	// Renew extends the lease iff owner still holds it at exactly term
	// and it has not expired. Returns the current lease and whether the
	// renewal succeeded — a false return means the caller must step
	// down.
	Renew(owner NodeID, term uint64, now time.Time, ttl time.Duration) (Lease, bool, error)
	// Release frees the lease iff owner holds it at term, letting a
	// standby acquire without waiting out the TTL (graceful failover).
	Release(owner NodeID, term uint64) (bool, error)
	// Get returns the current lease and whether one has ever been
	// granted.
	Get() (Lease, bool, error)
}

// MemoryLease is the in-process LeaseStore.
type MemoryLease struct {
	mu   sync.Mutex
	cur  Lease
	held bool
}

// NewMemoryLease returns an empty in-process lease store.
func NewMemoryLease() *MemoryLease { return &MemoryLease{} }

// TryAcquire implements LeaseStore.
func (m *MemoryLease) TryAcquire(owner NodeID, now time.Time, ttl time.Duration) (Lease, bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.cur, m.held = acquire(m.cur, m.held, owner, now, ttl)
	return m.cur, m.held && m.cur.Owner == owner, nil
}

// Renew implements LeaseStore.
func (m *MemoryLease) Renew(owner NodeID, term uint64, now time.Time, ttl time.Duration) (Lease, bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var ok bool
	m.cur, ok = renew(m.cur, m.held, owner, term, now, ttl)
	return m.cur, ok, nil
}

// Release implements LeaseStore.
func (m *MemoryLease) Release(owner NodeID, term uint64) (bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.held || m.cur.Owner != owner || m.cur.Term != term {
		return false, nil
	}
	// The term survives release: the next grant must still fence above
	// every write the released leader ever made.
	m.cur.Expiry = time.Time{}
	return true, nil
}

// Get implements LeaseStore.
func (m *MemoryLease) Get() (Lease, bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.cur, m.held, nil
}

// acquire is the shared CAS arm of TryAcquire: given the current
// state, decide the next. Kept pure so both stores agree exactly.
func acquire(cur Lease, held bool, owner NodeID, now time.Time, ttl time.Duration) (Lease, bool) {
	switch {
	case held && cur.Owner == owner && !cur.ExpiredAt(now):
		// Re-acquire by the valid owner extends at the same term.
		cur.Expiry = now.Add(ttl)
		return cur, true
	case !held || cur.ExpiredAt(now):
		return Lease{Owner: owner, Term: cur.Term + 1, Expiry: now.Add(ttl)}, true
	default:
		return cur, held
	}
}

// renew is the shared CAS arm of Renew.
func renew(cur Lease, held bool, owner NodeID, term uint64, now time.Time, ttl time.Duration) (Lease, bool) {
	if !held || cur.Owner != owner || cur.Term != term || cur.ExpiredAt(now) {
		return cur, false
	}
	cur.Expiry = now.Add(ttl)
	return cur, true
}

// FileLease is a LeaseStore backed by one JSON file on a filesystem
// shared by the coordinators. Mutations run under a sidecar lock file
// (created O_EXCL, broken when stale) and land via temp-file rename,
// so two counterminerd processes on one host can elect through it.
// It trusts the hosts' clocks to agree to within the lease TTL —
// acceptable for the localhost quickstart it exists for; a multi-host
// fleet should bring a real coordination service behind the same
// interface.
type FileLease struct {
	path string
	mu   sync.Mutex // serialises this process; the lock file serialises others
}

// NewFileLease returns a lease store at path (created on first use).
func NewFileLease(path string) *FileLease { return &FileLease{path: path} }

// staleLockAge is how old a lock file may grow before it is presumed
// abandoned by a crashed process and broken.
const staleLockAge = 2 * time.Second

// lock acquires the sidecar lock file, breaking stale ones.
func (f *FileLease) lock() (func(), error) {
	lockPath := f.path + ".lock"
	deadline := time.Now().Add(staleLockAge + time.Second)
	for {
		fd, err := os.OpenFile(lockPath, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if err == nil {
			fd.Close()
			return func() { os.Remove(lockPath) }, nil
		}
		if !errors.Is(err, os.ErrExist) {
			return nil, fmt.Errorf("cluster: lease lock: %w", err)
		}
		if st, serr := os.Stat(lockPath); serr == nil && time.Since(st.ModTime()) > staleLockAge {
			os.Remove(lockPath) // abandoned by a crashed process
			continue
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("cluster: lease lock at %s held too long", lockPath)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// load reads the lease file. A missing file is an unheld lease.
func (f *FileLease) load() (Lease, bool, error) {
	data, err := os.ReadFile(f.path)
	if errors.Is(err, os.ErrNotExist) {
		return Lease{}, false, nil
	}
	if err != nil {
		return Lease{}, false, fmt.Errorf("cluster: read lease: %w", err)
	}
	var l Lease
	if err := json.Unmarshal(data, &l); err != nil {
		return Lease{}, false, fmt.Errorf("cluster: decode lease %s: %w", f.path, err)
	}
	return l, true, nil
}

// save writes the lease file atomically (temp file + rename).
func (f *FileLease) save(l Lease) error {
	data, err := json.Marshal(l)
	if err != nil {
		return err
	}
	tmp := f.path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("cluster: write lease: %w", err)
	}
	if err := os.Rename(tmp, f.path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("cluster: commit lease: %w", err)
	}
	return nil
}

// TryAcquire implements LeaseStore.
func (f *FileLease) TryAcquire(owner NodeID, now time.Time, ttl time.Duration) (Lease, bool, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := os.MkdirAll(filepath.Dir(f.path), 0o755); err != nil {
		return Lease{}, false, err
	}
	unlock, err := f.lock()
	if err != nil {
		return Lease{}, false, err
	}
	defer unlock()
	cur, held, err := f.load()
	if err != nil {
		return Lease{}, false, err
	}
	next, nowHeld := acquire(cur, held, owner, now, ttl)
	if nowHeld && next.Owner == owner && (next != cur || !held) {
		if err := f.save(next); err != nil {
			return cur, false, err
		}
	}
	return next, nowHeld && next.Owner == owner, nil
}

// Renew implements LeaseStore.
func (f *FileLease) Renew(owner NodeID, term uint64, now time.Time, ttl time.Duration) (Lease, bool, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	unlock, err := f.lock()
	if err != nil {
		return Lease{}, false, err
	}
	defer unlock()
	cur, held, err := f.load()
	if err != nil {
		return Lease{}, false, err
	}
	next, ok := renew(cur, held, owner, term, now, ttl)
	if ok {
		if err := f.save(next); err != nil {
			return cur, false, err
		}
	}
	return next, ok, nil
}

// Release implements LeaseStore.
func (f *FileLease) Release(owner NodeID, term uint64) (bool, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	unlock, err := f.lock()
	if err != nil {
		return false, err
	}
	defer unlock()
	cur, held, err := f.load()
	if err != nil {
		return false, err
	}
	if !held || cur.Owner != owner || cur.Term != term {
		return false, nil
	}
	cur.Expiry = time.Time{}
	if err := f.save(cur); err != nil {
		return false, err
	}
	return true, nil
}

// Get implements LeaseStore.
func (f *FileLease) Get() (Lease, bool, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.load()
}
