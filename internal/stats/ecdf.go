package stats

import (
	"errors"
	"math"
	"sort"
)

// ECDF is an empirical cumulative distribution function over a sample.
type ECDF struct {
	sorted []float64
}

// NewECDF builds the ECDF of xs (the input is copied).
func NewECDF(xs []float64) (*ECDF, error) {
	if len(xs) == 0 {
		return nil, ErrEmpty
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return &ECDF{sorted: sorted}, nil
}

// At returns the fraction of samples <= x.
func (e *ECDF) At(x float64) float64 {
	// First index with sorted[i] > x.
	i := sort.SearchFloat64s(e.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(e.sorted))
}

// Len returns the sample size.
func (e *ECDF) Len() int { return len(e.sorted) }

// Quantile returns the q-th empirical quantile (nearest-rank).
func (e *ECDF) Quantile(q float64) (float64, error) {
	if q < 0 || q > 1 || math.IsNaN(q) {
		return 0, errors.New("stats: quantile out of [0,1]")
	}
	i := int(math.Ceil(q*float64(len(e.sorted)))) - 1
	if i < 0 {
		i = 0
	}
	return e.sorted[i], nil
}

// KolmogorovSmirnov computes the two-sample KS statistic
// D = sup |F1(x) − F2(x)| between samples xs and ys, together with the
// asymptotic p-value (Smirnov's approximation). It complements the
// Anderson-Darling census: AD weights the tails, KS the body.
func KolmogorovSmirnov(xs, ys []float64) (d, pValue float64, err error) {
	if len(xs) == 0 || len(ys) == 0 {
		return 0, 0, ErrEmpty
	}
	a := append([]float64(nil), xs...)
	b := append([]float64(nil), ys...)
	sort.Float64s(a)
	sort.Float64s(b)

	na, nb := len(a), len(b)
	i, j := 0, 0
	for i < na && j < nb {
		var x float64
		if a[i] <= b[j] {
			x = a[i]
		} else {
			x = b[j]
		}
		for i < na && a[i] <= x {
			i++
		}
		for j < nb && b[j] <= x {
			j++
		}
		diff := math.Abs(float64(i)/float64(na) - float64(j)/float64(nb))
		if diff > d {
			d = diff
		}
	}

	// Asymptotic p-value: Q_KS(sqrt(n_eff)·D) with the usual
	// small-sample correction.
	ne := float64(na) * float64(nb) / float64(na+nb)
	lambda := (math.Sqrt(ne) + 0.12 + 0.11/math.Sqrt(ne)) * d
	pValue = ksQ(lambda)
	return d, pValue, nil
}

// ksQ is the Kolmogorov distribution tail Q(λ) = 2 Σ (−1)^{k−1} e^{−2k²λ²}.
func ksQ(lambda float64) float64 {
	if lambda <= 0 {
		return 1
	}
	sum := 0.0
	sign := 1.0
	for k := 1; k <= 100; k++ {
		term := sign * math.Exp(-2*float64(k*k)*lambda*lambda)
		sum += term
		if math.Abs(term) < 1e-12 {
			break
		}
		sign = -sign
	}
	p := 2 * sum
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}
