package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"counterminer/internal/parallel"
	"counterminer/internal/stream"
)

// Admission-control sentinels. The HTTP layer maps them to typed JSON
// rejections: ErrQueueFull → 429 (back off and retry), ErrDraining →
// 503 (the server is shutting down; retry against another instance).
var (
	// ErrQueueFull reports a job rejected because the bounded queue is
	// at capacity. Rejecting at admission is what keeps overload
	// graceful: the server sheds work instead of buffering unboundedly.
	ErrQueueFull = errors.New("serve: queue full")
	// ErrDraining reports a job rejected because the queue is shutting
	// down and no longer admits work.
	ErrDraining = errors.New("serve: draining, not accepting new jobs")
)

// Queue is the admission-controlled job queue in front of the analysis
// pipeline: a bounded cross-batch priority scheduler feeding a fixed
// worker pool (run on internal/parallel, the same pool primitive as
// the analysis engine itself). Jobs are keyed by the batch planner's
// benchmark-identity grouping key, so jobs from different requests —
// or different batch handles — that share a benchmark dispatch
// adjacently and the collector's memoized trace generators stay warm
// across clients (see stream.Scheduler for the ordering invariants).
// Every admitted job gets its own deadline derived from the server's
// per-request budget, so one slow analysis can never hold a worker
// forever.
//
// Shutdown is graceful and split by state: Drain lets jobs that are
// already executing finish, while jobs still waiting in the scheduler
// get their contexts canceled — they then travel the pipeline's
// ordinary *CancelError path and their waiters see a typed
// cancellation, not a hang.
type Queue struct {
	sched  *stream.Scheduler[*queuedJob]
	budget time.Duration
	depth  int
	done   chan struct{}

	mu       sync.Mutex
	draining bool

	active   atomic.Int64
	executed atomic.Int64
}

// queuedJob is one admitted unit of work with its budget context.
// popped flips when a worker claims the job: a cancel-if-queued (batch
// handle cancellation) only fires while it is still false.
type queuedJob struct {
	ctx    context.Context
	cancel context.CancelFunc
	run    func(context.Context)
	popped atomic.Bool
}

// NewQueue starts a queue with the given worker pool size, buffer
// depth (jobs waiting beyond the ones executing; 0 means a job is only
// admitted when a worker is idle), and per-job budget (<= 0 means no
// deadline).
func NewQueue(workers, depth int, budget time.Duration) *Queue {
	if workers <= 0 {
		workers = 1
	}
	if depth < 0 {
		depth = 0
	}
	q := &Queue{
		sched:  stream.NewScheduler[*queuedJob](),
		budget: budget,
		depth:  depth,
		done:   make(chan struct{}),
	}
	go func() {
		defer close(q.done)
		// One "item" per worker, each running the pull loop until the
		// scheduler closes: the analysis engine's pool primitive
		// doubles as the server's resident worker pool.
		parallel.ForEachWorker(workers, workers, func(_, _ int) error {
			q.loop()
			return nil
		})
	}()
	return q
}

// loop is one worker: pull the highest-priority job, claim it (so
// Drain and handle cancellation no longer touch it), execute under the
// job's budget context, release the timer, and mark the group idle.
func (q *Queue) loop() {
	for {
		j, group, ok := q.sched.Pop()
		if !ok {
			return
		}
		j.popped.Store(true)
		q.active.Add(1)
		j.run(j.ctx)
		j.cancel()
		q.active.Add(-1)
		q.executed.Add(1)
		q.sched.Done(group)
	}
}

// Submit admits run into the queue, or rejects it with ErrQueueFull /
// ErrDraining without blocking. An admitted job runs exactly once on
// some worker, under a context carrying the per-job budget deadline —
// canceled early only if the queue drains before the job starts.
func (q *Queue) Submit(run func(context.Context)) error {
	var deadline time.Time
	if q.budget > 0 {
		deadline = time.Now().Add(q.budget)
	}
	return q.SubmitDeadline(deadline, run)
}

// SubmitDeadline is Submit under an explicit deadline (zero means
// none) instead of one carved per job from the server budget. The
// batch scheduler uses it to run every job of a batch under one
// batch-level deadline, so a sweep's total hold on the workers is
// bounded exactly like a single request's.
func (q *Queue) SubmitDeadline(deadline time.Time, run func(context.Context)) error {
	_, err := q.SubmitGrouped("", deadline, run)
	return err
}

// SubmitGrouped is SubmitDeadline with the job filed under a
// benchmark-identity grouping key for cross-batch priority dispatch.
// On success it also returns a cancel function that cancels the job's
// context only while it still waits in the scheduler — the batch-handle
// cancellation path: a queued job then executes immediately into the
// pipeline's *CancelError, while a job already claimed by a worker is
// left to finish normally.
func (q *Queue) SubmitGrouped(group string, deadline time.Time, run func(context.Context)) (func(), error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.draining {
		return nil, ErrDraining
	}
	// Mirror of the old channel-buffer admission: a job is admitted
	// while fewer than depth jobs wait, plus one per idle worker (a
	// send to an idle receiver never consumed buffer space).
	if q.sched.Len() >= q.depth+q.sched.Waiters() {
		return nil, ErrQueueFull
	}
	var (
		ctx    context.Context
		cancel context.CancelFunc
	)
	if !deadline.IsZero() {
		ctx, cancel = context.WithDeadline(context.Background(), deadline)
	} else {
		ctx, cancel = context.WithCancel(context.Background())
	}
	j := &queuedJob{ctx: ctx, cancel: cancel, run: run}
	if _, ok := q.sched.Enqueue(group, j); !ok {
		cancel()
		return nil, ErrDraining
	}
	return func() {
		if !j.popped.Load() {
			j.cancel()
		}
	}, nil
}

// Drain shuts the queue down gracefully: new submissions are rejected
// with ErrDraining, jobs already executing run to completion, and jobs
// still waiting in the scheduler have their contexts canceled (they
// still execute, but observe cancellation immediately and return
// through the pipeline's *CancelError path). Drain blocks until every
// worker has exited; it is idempotent.
func (q *Queue) Drain() {
	q.mu.Lock()
	if q.draining {
		q.mu.Unlock()
		<-q.done
		return
	}
	q.draining = true
	// Flag, cancellations, and close happen under q.mu so no Submit can
	// slip a job in between: every queued job at this instant is
	// canceled, and nothing is admitted after.
	q.sched.ForEach(func(j *queuedJob) { j.cancel() })
	q.sched.Close()
	q.mu.Unlock()
	<-q.done
}

// Depth reports how many admitted jobs are waiting for a worker.
func (q *Queue) Depth() int { return q.sched.Len() }

// Capacity reports the buffer depth the queue admits beyond the
// executing jobs.
func (q *Queue) Capacity() int { return q.depth }

// Active reports how many jobs are executing right now.
func (q *Queue) Active() int { return int(q.active.Load()) }

// Executed reports how many jobs have finished executing (successfully
// or not) since the queue started.
func (q *Queue) Executed() int { return int(q.executed.Load()) }

// GroupDepths reports the scheduler's live per-grouping-key gauges
// (depth, executing, oldest wait), sorted by key — the observability
// the single global depth gauge cannot give: a starved or inverted
// group is visible directly.
func (q *Queue) GroupDepths() []stream.GroupDepth { return q.sched.Groups() }
