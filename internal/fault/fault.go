// Package fault is CounterMiner's deterministic fault-injection layer.
// The real system runs atop Linux perf on a live cluster, where
// collection is inherently unreliable: runs die, multiplexed series
// come back truncated or clipped, events are silently unsupported, and
// store writes fail. This package reproduces those failure modes behind
// the same small interfaces the pipeline consumes (RunSource, RunSink),
// so the whole graceful-degradation path — retries, run quorum, series
// quarantine, store-error tolerance — can be exercised end to end.
//
// Every injection decision is drawn from an RNG seeded purely by
// (Config.Seed, benchmark, runID[, event]), never by call order or wall
// clock. Identical seeds therefore replay identical failures at any
// worker count, which is what makes chaos tests bit-reproducible.
package fault

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"counterminer/internal/collector"
	"counterminer/internal/sim"
	"counterminer/internal/store"
)

// RunSource abstracts where benchmark runs come from. The concrete
// collector satisfies it; Source wraps any RunSource with injected
// failures.
type RunSource interface {
	Collect(p sim.Profile, runID int, mode collector.Mode, events []string) (*collector.Run, error)
}

// RunSink abstracts where collected runs are persisted. The store's DB
// satisfies it; Sink wraps any RunSink with injected write failures.
type RunSink interface {
	Put(rec store.Record) error
	Flush() error
}

// Compile-time checks that the real collector and store satisfy the
// interfaces the pipeline consumes.
var (
	_ RunSource = (*collector.Collector)(nil)
	_ RunSink   = (*store.DB)(nil)
)

// ErrInjected is the sentinel all injected failures wrap; use
// errors.Is(err, fault.ErrInjected) to tell injected faults from real
// ones in tests.
var ErrInjected = errors.New("fault: injected failure")

// InjectedError is one injected failure, carrying where it struck.
type InjectedError struct {
	// Kind classifies the failure: "run-permanent", "run-transient",
	// or "store-put".
	Kind string
	// Benchmark and RunID locate the run the failure hit.
	Benchmark string
	RunID     int
}

func (e *InjectedError) Error() string {
	return fmt.Sprintf("fault: injected %s failure for %s/run %d", e.Kind, e.Benchmark, e.RunID)
}

// Unwrap makes errors.Is(err, ErrInjected) true.
func (e *InjectedError) Unwrap() error { return ErrInjected }

// Config sets the per-decision injection probabilities. All rates are
// in [0, 1]; the zero value injects nothing.
type Config struct {
	// Seed decorrelates the injection pattern. Two Sources with equal
	// Seed (and equal rates) inject identical failures.
	Seed int64
	// RunFailRate is the probability a run fails permanently: every
	// Collect attempt for that (benchmark, runID) errors.
	RunFailRate float64
	// TransientRate is the probability a run fails transiently: the
	// first 1..MaxTransient Collect attempts error, then attempts
	// succeed — the failure mode a retry loop recovers from.
	TransientRate float64
	// MaxTransient bounds how many leading attempts a transient run
	// failure consumes (default 2, so Attempts >= 3 always recovers).
	MaxTransient int
	// CorruptRate is the per-(run, event) probability that one
	// collected series comes back corrupted: tail truncation, dropped
	// intervals, counter-saturation clipping, or NaN/Inf garbage.
	CorruptRate float64
	// StoreFailRate is the per-record probability that a store Put
	// fails with an injected I/O error.
	StoreFailRate float64
}

func (c Config) withDefaults() Config {
	if c.MaxTransient <= 0 {
		c.MaxTransient = 2
	}
	return c
}

// Corruption kinds, drawn uniformly once a series is selected.
const (
	corruptTruncate = iota // cut the tail off (10–50% lost)
	corruptDrop            // drop scattered intervals (5–15% lost)
	corruptSaturate        // clip values above a saturation cap
	corruptGarbage         // overwrite scattered values with NaN/Inf
	numCorruptions
)

// Source wraps a RunSource with injected run failures and series
// corruption. It is safe for concurrent use. The only mutable state is
// the per-run attempt counter backing transient failures; injection
// decisions themselves depend solely on (Seed, benchmark, runID, event),
// so concurrent interleavings cannot change what gets injected.
type Source struct {
	inner RunSource
	cfg   Config

	mu       sync.Mutex
	attempts map[string]int
}

// NewSource wraps inner with fault injection per cfg.
func NewSource(inner RunSource, cfg Config) *Source {
	return &Source{inner: inner, cfg: cfg.withDefaults(), attempts: make(map[string]int)}
}

// Reset clears the per-run attempt counters, so a subsequent identical
// call sequence replays the identical failure pattern.
func (s *Source) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.attempts = make(map[string]int)
}

// attempt returns the 1-based attempt number of this Collect call for
// the given run key.
func (s *Source) attempt(key string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.attempts[key]++
	return s.attempts[key]
}

// Collect implements RunSource: it decides the run's fate from the
// seeded RNG, then delegates to the wrapped source and corrupts the
// returned series as configured.
func (s *Source) Collect(p sim.Profile, runID int, mode collector.Mode, events []string) (*collector.Run, error) {
	rng := newRNG(s.cfg.Seed, "run", p.Name, itoa(runID))
	u := rng.float64()
	switch {
	case u < s.cfg.RunFailRate:
		return nil, &InjectedError{Kind: "run-permanent", Benchmark: p.Name, RunID: runID}
	case u < s.cfg.RunFailRate+s.cfg.TransientRate:
		fails := 1 + rng.intn(s.cfg.MaxTransient)
		if s.attempt(p.Name+"/"+itoa(runID)) <= fails {
			return nil, &InjectedError{Kind: "run-transient", Benchmark: p.Name, RunID: runID}
		}
	}
	run, err := s.inner.Collect(p, runID, mode, events)
	if err != nil {
		return nil, err
	}
	if s.cfg.CorruptRate > 0 {
		s.corrupt(run, p.Name, runID)
	}
	return run, nil
}

// corrupt damages a deterministic subset of the run's series in place.
// The collector allocates fresh value slices per Collect, so mutating
// them cannot alias other runs.
func (s *Source) corrupt(run *collector.Run, benchmark string, runID int) {
	for _, ev := range run.Series.Events() {
		rng := newRNG(s.cfg.Seed, "series", benchmark, itoa(runID), ev)
		if rng.float64() >= s.cfg.CorruptRate {
			continue
		}
		series, err := run.Series.Lookup(ev)
		if err != nil || series.Len() < 4 {
			continue
		}
		vals := series.Values
		n := len(vals)
		switch rng.intn(numCorruptions) {
		case corruptTruncate:
			// Lose 10–50% of the tail, as if the counter group stopped
			// being scheduled before the run ended.
			lost := n/10 + rng.intn(n*2/5+1)
			if lost >= n {
				lost = n - 1
			}
			series.Values = vals[:n-lost]
		case corruptDrop:
			// Drop 5–15% of intervals at scattered positions, as if
			// individual samples were lost in flight.
			lost := 1 + n/20 + rng.intn(n/10+1)
			kept := vals[:0]
			for i, v := range vals {
				// Deterministic per-index keep/drop decision.
				if lost > 0 && rng.intn(n-i) < lost {
					lost--
					continue
				}
				kept = append(kept, v)
			}
			series.Values = kept
		case corruptSaturate:
			// Clip everything above a fraction of the observed maximum,
			// mimicking a saturating counter register.
			max := math.Inf(-1)
			for _, v := range vals {
				if v > max {
					max = v
				}
			}
			cap := max * (0.3 + 0.3*rng.float64())
			for i, v := range vals {
				if v > cap {
					vals[i] = cap
				}
			}
		case corruptGarbage:
			// Overwrite 1–5% of samples with non-finite garbage.
			bad := 1 + rng.intn(n/20+1)
			garbage := []float64{math.NaN(), math.Inf(1), math.Inf(-1)}
			for k := 0; k < bad; k++ {
				vals[rng.intn(n)] = garbage[rng.intn(len(garbage))]
			}
		}
	}
}

// Sink wraps a RunSink with injected per-record write failures.
type Sink struct {
	inner RunSink
	cfg   Config
}

// NewSink wraps inner with fault injection per cfg.
func NewSink(inner RunSink, cfg Config) *Sink {
	return &Sink{inner: inner, cfg: cfg.withDefaults()}
}

// Put implements RunSink, failing deterministically per record.
func (k *Sink) Put(rec store.Record) error {
	rng := newRNG(k.cfg.Seed, "store", rec.Meta.Benchmark, itoa(rec.Meta.RunID), rec.Meta.Mode)
	if rng.float64() < k.cfg.StoreFailRate {
		return &InjectedError{Kind: "store-put", Benchmark: rec.Meta.Benchmark, RunID: rec.Meta.RunID}
	}
	return k.inner.Put(rec)
}

// Flush implements RunSink by delegating to the wrapped sink.
func (k *Sink) Flush() error { return k.inner.Flush() }

// ----- Seeded keyed RNG.
//
// A tiny splitmix64 generator seeded from an FNV-1a hash of the
// decision key. Independent of math/rand so the injection pattern can
// never entangle with the pipeline's modelling randomness.

type rng struct{ state uint64 }

// newRNG derives a generator from the seed and key parts.
func newRNG(seed int64, parts ...string) *rng {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(b byte) {
		h ^= uint64(b)
		h *= prime64
	}
	for i := 0; i < 8; i++ {
		mix(byte(uint64(seed) >> (8 * i)))
	}
	for _, p := range parts {
		for i := 0; i < len(p); i++ {
			mix(p[i])
		}
		mix(0xff) // separator so ("ab","c") != ("a","bc")
	}
	return &rng{state: h}
}

// next advances the splitmix64 state.
func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float64 returns a uniform value in [0, 1).
func (r *rng) float64() float64 { return float64(r.next()>>11) / (1 << 53) }

// intn returns a uniform value in [0, n).
func (r *rng) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}

// itoa is strconv.Itoa without the import.
func itoa(v int) string { return fmt.Sprintf("%d", v) }
