package cluster

import (
	"context"
	"fmt"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	counterminer "counterminer"
	"counterminer/internal/serve"
	"counterminer/internal/store"
	"counterminer/pkg/client"
)

// TestRequeueAfterLeaseExpiryDropsLateCompletion is the failover data
// path end to end: a worker goes silent (one-way partition — its
// heartbeats stop but it keeps computing), its lease expires, the
// coordinator requeues the in-flight job onto another worker, the
// client gets exactly one answer, and the partitioned worker's late
// answer is dropped and counted — never double-delivered.
func TestRequeueAfterLeaseExpiryDropsLateCompletion(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-dependent failover test in -short")
	}
	coord, cn, _ := startCoordinatorNode(t, "coord", nil, nil)
	join := []string{cn.url}

	// Whichever worker the ring routes the job to becomes the victim:
	// its exec blocks until the test releases it, long past its lease.
	var victim atomic.Value // NodeID
	release := make(chan struct{})
	entered := make(chan NodeID, 2)
	mkExec := func(id NodeID) func(context.Context, serve.Job) (*counterminer.Analysis, error) {
		return func(ctx context.Context, j serve.Job) (*counterminer.Analysis, error) {
			entered <- id
			if victim.CompareAndSwap(nil, id) || victim.Load() == id {
				<-release
			}
			return &counterminer.Analysis{Benchmark: j.Benchmark, Events: 1}, nil
		}
	}
	workers := map[NodeID]*Worker{}
	for _, id := range []NodeID{"w1", "w2"} {
		w, _ := startWorkerNode(t, id, join, nil, "", mkExec(id))
		workers[id] = w
	}
	waitFor(t, "workers registered", func() bool { return coord.Registry().Live() == 2 })

	// Dispatch directly under a long-lived context: the victim's RPC
	// must stay alive past the requeue so its late answer can arrive.
	resc := make(chan error, 1)
	go func() {
		ana, err := coord.Dispatch(context.Background(), serve.Job{Key: "job-1", Benchmark: "wordcount"})
		if err == nil && ana == nil {
			err = fmt.Errorf("dispatch returned no analysis")
		}
		resc <- err
	}()

	// The owner enters and blocks; partition it so its lease lapses.
	first := <-entered
	workers[first].Partition(true)

	// The coordinator must declare it dead and requeue onto the other
	// worker, which answers immediately — while the victim still hangs.
	if err := <-resc; err != nil {
		t.Fatalf("analyze during failover: %v", err)
	}
	second := <-entered
	if second == first {
		t.Fatalf("requeue went back to the partitioned worker %s", first)
	}
	stats := coord.Stats()
	if stats.Requeues == 0 || stats.LeaseExpirations == 0 {
		t.Errorf("stats after failover = %+v, want requeues and expirations > 0", stats)
	}

	// Now the partitioned worker comes back and answers late: the
	// completion must be dropped and counted, not delivered twice.
	close(release)
	waitFor(t, "late completion dropped", func() bool {
		return coord.Stats().LateCompletionsDropped == 1
	})
}

// TestReDeliveredJobIsIdempotentOnWorker pins the property requeueing
// leans on: delivering the same content-addressed job to a worker
// twice — a coordinator retrying after a lost reply, or two
// coordinators racing across a failover — executes once, serves the
// second delivery from cache, and leaves the run store with exactly
// the records of a single execution.
func TestReDeliveredJobIsIdempotentOnWorker(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real pipelines in -short")
	}
	job := serve.Job{
		Key:       "ignored-recomputed-locally",
		Benchmark: "wordcount",
		Runs:      2,
		Trees:     10,
		SkipEIR:   true,
	}

	run := func(deliveries int, storePath string) *client.Snapshot {
		var srv *serve.Server
		n := startServeNode(t, workerServeConfig(storePath), func(s *serve.Server, _ string) { srv = s })
		for i := 0; i < deliveries; i++ {
			ana, err := srv.Execute(context.Background(), job)
			if err != nil {
				t.Fatalf("delivery %d: %v", i, err)
			}
			if ana == nil || ana.Benchmark != "wordcount" {
				t.Fatalf("delivery %d: bad analysis %+v", i, ana)
			}
		}
		snap, err := client.New(n.url).Metrics(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		n.stop() // flush the store
		return snap
	}

	dir := t.TempDir()
	oncePath := filepath.Join(dir, "once.db")
	twicePath := filepath.Join(dir, "twice.db")
	run(1, oncePath)
	snap := run(3, twicePath)

	// One pipeline execution, the re-deliveries served from cache.
	if snap.Requests.CacheMisses != 1 || snap.Requests.CacheHits != 2 {
		t.Errorf("cache counters = misses %d hits %d, want 1/2",
			snap.Requests.CacheMisses, snap.Requests.CacheHits)
	}
	if snap.Queue.Executed != 1 {
		t.Errorf("queue executed = %d, want 1 (re-delivery must not re-run)", snap.Queue.Executed)
	}

	// The store holds exactly one execution's records — no duplicates,
	// no extras.
	if got, want := storeRecordKeys(t, twicePath), storeRecordKeys(t, oncePath); !sameKeySet(got, want) {
		t.Errorf("store after 3 deliveries has %d records, single execution has %d", len(got), len(want))
	}
}

// storeRecordKeys opens a flushed store and returns its record keys,
// failing the test on any duplicate (benchmark, runID, mode).
func storeRecordKeys(t *testing.T, path string) map[string]bool {
	t.Helper()
	db, err := store.Open(path)
	if err != nil {
		t.Fatalf("open store %s: %v", path, err)
	}
	keys := make(map[string]bool)
	for _, m := range db.List() {
		k := fmt.Sprintf("%s/%d/%s", m.Benchmark, m.RunID, m.Mode)
		if keys[k] {
			t.Fatalf("duplicate record %s in %s", k, path)
		}
		keys[k] = true
	}
	return keys
}

func sameKeySet(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// TestClusterRequeueCarriesCleanerThroughRedispatch pins the
// failover path's cleaner fidelity: a job analysed under a non-default
// cleaner that gets requeued after its owner's lease expires must reach
// the second worker with the same cleaner name. Workers recompute the
// content address from the wire Job, so losing the field here would
// silently serve the re-dispatched client a default-cleaner result.
func TestClusterRequeueCarriesCleanerThroughRedispatch(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-dependent failover test in -short")
	}
	coord, cn, _ := startCoordinatorNode(t, "coord", nil, nil)
	join := []string{cn.url}

	type delivery struct {
		id  NodeID
		job serve.Job
	}
	var victim atomic.Value // NodeID
	release := make(chan struct{})
	defer close(release)
	entered := make(chan delivery, 2)
	mkExec := func(id NodeID) func(context.Context, serve.Job) (*counterminer.Analysis, error) {
		return func(ctx context.Context, j serve.Job) (*counterminer.Analysis, error) {
			entered <- delivery{id, j}
			if victim.CompareAndSwap(nil, id) || victim.Load() == id {
				<-release
			}
			return &counterminer.Analysis{Benchmark: j.Benchmark, Cleaner: j.Cleaner, Events: 1}, nil
		}
	}
	workers := map[NodeID]*Worker{}
	for _, id := range []NodeID{"w1", "w2"} {
		w, _ := startWorkerNode(t, id, join, nil, "", mkExec(id))
		workers[id] = w
	}
	waitFor(t, "workers registered", func() bool { return coord.Registry().Live() == 2 })

	resc := make(chan *counterminer.Analysis, 1)
	go func() {
		ana, err := coord.Dispatch(context.Background(),
			serve.Job{Key: "job-bayes", Benchmark: "wordcount", Cleaner: "bayes"})
		if err != nil {
			t.Errorf("dispatch: %v", err)
		}
		resc <- ana
	}()

	first := <-entered
	if first.job.Cleaner != "bayes" {
		t.Fatalf("first delivery cleaner = %q, want bayes", first.job.Cleaner)
	}
	workers[first.id].Partition(true)

	ana := <-resc
	second := <-entered
	if second.id == first.id {
		t.Fatalf("requeue went back to the partitioned worker %s", first.id)
	}
	if second.job.Cleaner != "bayes" {
		t.Fatalf("re-dispatched delivery cleaner = %q, want bayes (cleaner lost across requeue)", second.job.Cleaner)
	}
	if ana == nil || ana.Cleaner != "bayes" {
		t.Fatalf("delivered analysis = %+v, want Cleaner bayes", ana)
	}
}

// TestDispatchContextCancelReturnsPromptly guards the dispatch loop's
// exit paths: a canceled client context must not leave Dispatch hung
// on a dead worker.
func TestDispatchContextCancelReturnsPromptly(t *testing.T) {
	coord, cn, _ := startCoordinatorNode(t, "coord", nil, nil)
	release := make(chan struct{})
	defer close(release)
	startWorkerNode(t, "w1", []string{cn.url}, nil, "",
		func(ctx context.Context, j serve.Job) (*counterminer.Analysis, error) {
			select {
			case <-release:
			case <-ctx.Done():
			}
			return nil, ctx.Err()
		})
	waitFor(t, "worker registered", func() bool { return coord.Registry().Live() == 1 })

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	_, err := coord.Dispatch(ctx, serve.Job{Key: "k1", Benchmark: "wordcount"})
	if err == nil {
		t.Fatal("dispatch with canceled context returned nil error")
	}
}
